#include <gtest/gtest.h>

#include "core/invariant_monitor.h"

namespace avis::core {
namespace {

// Builds a synthetic profiling run: climb to 20 m, cruise, land.
ExperimentResult synthetic_run(double noise_seed) {
  ExperimentResult run;
  run.workload_passed = true;
  const std::uint16_t preflight = 0x0000;
  const std::uint16_t takeoff = 0x0400;
  const std::uint16_t auto_wp1 = 0x0501;
  const std::uint16_t land = 0x0900;
  run.transitions = {{0, preflight, "preflight"},
                     {3000, takeoff, "takeoff"},
                     {12000, auto_wp1, "auto-wp1"},
                     {30000, land, "land"},
                     {50000, preflight, "preflight"}};
  for (sim::SimTimeMs t = 0; t <= 52000; t += kSamplePeriodMs) {
    StateSample s;
    s.time_ms = t;
    const double jitter = 0.05 * noise_seed;
    if (t < 3000) {
      s.mode_id = preflight;
      s.armed = false;
      s.on_ground = true;
    } else if (t < 12000) {
      s.mode_id = takeoff;
      s.armed = true;
      s.position.z = -(t - 3000) / 1000.0 * 2.2 - jitter;
    } else if (t < 30000) {
      s.mode_id = auto_wp1;
      s.armed = true;
      s.position.x = (t - 12000) / 1000.0 * 1.1 + jitter;
      s.position.z = -20.0 - jitter;
    } else if (t < 50000) {
      s.mode_id = land;
      s.armed = true;
      s.position.x = 19.8;
      s.position.z = -std::max(0.0, 20.0 - (t - 30000) / 1000.0 * 1.0) - jitter;
      s.on_ground = s.position.z > -0.05;
    } else {
      s.mode_id = preflight;
      s.armed = false;
      s.on_ground = true;
      s.position.x = 19.8;
    }
    run.trace.push_back(s);
  }
  run.duration_ms = 52000;
  return run;
}

MonitorModel make_model() {
  return MonitorModel::calibrate({synthetic_run(0.0), synthetic_run(1.0), synthetic_run(2.0)});
}

TEST(MonitorModel, CalibrationComputesNormalization) {
  const MonitorModel model = make_model();
  EXPECT_EQ(model.profiling_run_count(), 3u);
  EXPECT_GT(model.tau(), 0.0);
  EXPECT_GE(model.max_position_spread(), 0.1);
  EXPECT_GE(model.mode_graph().diameter(), 1);
  EXPECT_EQ(model.profiling_duration_ms(), 52100);
}

TEST(MonitorModel, StateDistanceZeroForIdenticalStates) {
  const MonitorModel model = make_model();
  const StateSample& s = model.profiling_state(0, 15000);
  EXPECT_DOUBLE_EQ(model.state_distance(s, s), 0.0);
}

TEST(MonitorModel, StateDistanceSymmetric) {
  const MonitorModel model = make_model();
  const StateSample& a = model.profiling_state(0, 15000);
  const StateSample& b = model.profiling_state(1, 25000);
  EXPECT_DOUBLE_EQ(model.state_distance(a, b), model.state_distance(b, a));
}

TEST(MonitorModel, ModeMismatchIncreasesDistance) {
  const MonitorModel model = make_model();
  StateSample a = model.profiling_state(0, 15000);
  StateSample b = a;
  b.mode_id = 0x0900;  // land instead of auto-wp1
  EXPECT_GT(model.state_distance(a, b), 0.5);
}

TEST(MonitorModel, ProfilingStatesPaddedBeyondEnd) {
  const MonitorModel model = make_model();
  const StateSample& last = model.profiling_state(0, 999999);
  EXPECT_EQ(last.mode_id, 0x0000);
}

TEST(MonitorModel, LivelinessHoldsOnProfilingStates) {
  const MonitorModel model = make_model();
  for (sim::SimTimeMs t = 0; t < 52000; t += 1000) {
    EXPECT_FALSE(model.liveliness_violated(model.profiling_state(2, t))) << "t=" << t;
  }
}

TEST(MonitorModel, LivelinessViolatedByLargeDeviation) {
  const MonitorModel model = make_model();
  StateSample rogue = model.profiling_state(0, 15000);
  rogue.position.x += 40.0;
  EXPECT_TRUE(model.liveliness_violated(rogue));
}

TEST(MonitorSession, CrashIsImmediateSafetyViolation) {
  const MonitorModel model = make_model();
  MonitorSession session(model);
  const auto violation = session.on_sample(model.profiling_state(0, 5000), true,
                                           sim::CrashCause::kHardLanding, false);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->type, ViolationType::kCrash);
}

TEST(MonitorSession, FirmwareDeathIsSafetyViolation) {
  const MonitorModel model = make_model();
  MonitorSession session(model);
  const auto violation =
      session.on_sample(model.profiling_state(0, 5000), false, sim::CrashCause::kNone, true);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->type, ViolationType::kFirmwareDead);
}

TEST(MonitorSession, CleanRunProducesNoViolation) {
  const MonitorModel model = make_model();
  MonitorSession session(model);
  for (sim::SimTimeMs t = 0; t < 52000; t += kSamplePeriodMs) {
    const auto v =
        session.on_sample(model.profiling_state(1, t), false, sim::CrashCause::kNone, false);
    ASSERT_FALSE(v.has_value()) << "t=" << t;
  }
}

TEST(MonitorSession, PersistentDeviationViolatesAfterFilter) {
  const MonitorModel model = make_model();
  MonitorSession session(model);
  int samples_to_violation = 0;
  std::optional<Violation> violation;
  for (sim::SimTimeMs t = 15000; t < 30000 && !violation; t += kSamplePeriodMs) {
    StateSample rogue = model.profiling_state(0, t);
    rogue.position.y += 40.0;  // large deviation, below the fly-away backstop
    violation = session.on_sample(rogue, false, sim::CrashCause::kNone, false);
    ++samples_to_violation;
  }
  ASSERT_TRUE(violation.has_value());
  // The persistence filter requires several consecutive samples.
  EXPECT_GE(samples_to_violation, 6);
  EXPECT_LE(samples_to_violation, 12);
}

TEST(MonitorSession, TransientBlipSuppressed) {
  const MonitorModel model = make_model();
  MonitorSession session(model);
  for (int k = 0; k < 3; ++k) {
    // Two deviating samples, then normal again — below the persistence bar.
    for (int i = 0; i < 2; ++i) {
      StateSample rogue = model.profiling_state(0, 20000);
      rogue.position.y += 40.0;
      EXPECT_FALSE(
          session.on_sample(rogue, false, sim::CrashCause::kNone, false).has_value());
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_FALSE(session
                       .on_sample(model.profiling_state(0, 20000 + i * 100), false,
                                  sim::CrashCause::kNone, false)
                       .has_value());
    }
  }
}

TEST(MonitorSession, DisarmedOnGroundIsSafe) {
  // A pre-arm refusal: the vehicle never takes off. Deviates hugely from the
  // flying profiling runs, but PreFlight+disarmed+on-ground is a safe state.
  const MonitorModel model = make_model();
  MonitorSession session(model);
  for (sim::SimTimeMs t = 0; t < 30000; t += kSamplePeriodMs) {
    StateSample grounded;
    grounded.time_ms = t;
    grounded.mode_id = 0x0000;
    grounded.armed = false;
    grounded.on_ground = true;
    EXPECT_FALSE(
        session.on_sample(grounded, false, sim::CrashCause::kNone, false).has_value());
  }
}

TEST(MonitorSession, DescendingLandIsSafeDespiteEq1) {
  // A failsafe landing mid-mission deviates from every profiling run but
  // satisfies the land safe-mode invariant while descending.
  const MonitorModel model = make_model();
  MonitorSession session(model);
  double altitude = 20.0;
  std::optional<Violation> violation;
  for (sim::SimTimeMs t = 15000; t < 35000 && altitude > 0.0; t += kSamplePeriodMs) {
    StateSample landing;
    landing.time_ms = t;
    landing.mode_id = 0x0900;  // land
    landing.armed = true;
    altitude -= 0.08;  // 0.8 m/s
    landing.position = {60.0, 0.0, -std::max(0.0, altitude)};
    landing.on_ground = altitude <= 0.0;
    violation = session.on_sample(landing, false, sim::CrashCause::kNone, false);
    if (violation) break;
  }
  EXPECT_FALSE(violation.has_value());
}

TEST(MonitorSession, HoveringLandViolatesLiveliness) {
  // APM-4679-style land flapping: in land mode but never descending.
  const MonitorModel model = make_model();
  MonitorSession session(model);
  std::optional<Violation> violation;
  for (sim::SimTimeMs t = 15000; t < 40000 && !violation; t += kSamplePeriodMs) {
    StateSample hover;
    hover.time_ms = t;
    hover.mode_id = 0x0900;
    hover.armed = true;
    hover.position = {30.0, 0.0, -5.0};  // stuck at 5 m, off-mission
    violation = session.on_sample(hover, false, sim::CrashCause::kNone, false);
  }
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->type, ViolationType::kLiveliness);
}

TEST(MonitorSession, FlyAwayBackstopFires) {
  const MonitorModel model = make_model();
  MonitorSession session(model);
  StateSample rogue;
  rogue.time_ms = 15000;
  rogue.mode_id = 0x0501;
  rogue.armed = true;
  rogue.position = {model.max_home_distance() + 30.0, 0.0, -20.0};
  const auto violation = session.on_sample(rogue, false, sim::CrashCause::kNone, false);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->type, ViolationType::kFlyAway);
}

}  // namespace
}  // namespace avis::core
