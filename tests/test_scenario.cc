// The declarative ScenarioSpec API (core/scenario.h, docs/SCENARIOS.md).
//
// Contracts under test:
//  * from_json(to_json(spec)) reproduces an identical spec (and likewise
//    for a whole ScenarioGrid, the --scenario-file document);
//  * grid expansion is the deterministic (approach, personality, workload,
//    environment) product the table benches rely on;
//  * every registry name resolves through scenario_prototype /
//    make_scenario_strategy, and typos die loudly with the registered-name
//    listing;
//  * a campaign run from a dumped scenario document is report-identical to
//    the same grid built directly (the CSV-flag path of avis_campaign);
//  * a grid containing a new workload x new environment preset runs end to
//    end — the diversity claim the registries exist for.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/scenario.h"
#include "sim/environment_presets.h"
#include "test_helpers.h"
#include "workload/registry.h"

namespace {

using namespace avis;

core::ScenarioSpec non_default_spec() {
  core::ScenarioSpec spec;
  spec.approach = "random";
  spec.personality = "px4";
  spec.workload = "survey";
  spec.environment = "gusty";
  spec.bugs = "all";
  spec.budget_ms = 123456;
  spec.seed = 9001;
  spec.strategy_seed = 77;
  spec.constraints.max_set_size = 1;
  spec.constraints.max_plan_events = 2;
  return spec;
}

TEST(ScenarioSpec, JsonRoundTripIsIdentity) {
  const core::ScenarioSpec spec = non_default_spec();
  const core::ScenarioSpec reparsed = core::ScenarioSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed, spec);

  const core::ScenarioSpec defaults;
  EXPECT_EQ(core::ScenarioSpec::from_json(defaults.to_json()), defaults);
}

TEST(ScenarioSpec, FromJsonDefaultsMissingKeys) {
  const core::ScenarioSpec defaults;
  const core::ScenarioSpec parsed = core::ScenarioSpec::from_json(std::string_view("{}"));
  EXPECT_EQ(parsed, defaults);

  // strategy_seed defaults to seed + 7, matching the campaign stack's
  // long-standing convention.
  const auto seeded = core::ScenarioSpec::from_json(std::string_view(R"({"seed": 40})"));
  EXPECT_EQ(seeded.seed, 40u);
  EXPECT_EQ(seeded.strategy_seed, 47u);
}

TEST(ScenarioSpec, UnknownKeysAreRejected) {
  EXPECT_THROW(core::ScenarioSpec::from_json(std::string_view(R"({"envrionment": "calm"})")),
               util::JsonError);
  EXPECT_THROW(core::ScenarioGrid::from_json(std::string_view(R"({"workload": ["auto"]})")),
               util::JsonError);
}

TEST(ScenarioSpec, ValidateCatchesTyposWithSuggestion) {
  core::ScenarioSpec spec;
  spec.workload = "surveey";
  try {
    spec.validate();
    FAIL() << "expected UnknownNameError";
  } catch (const util::UnknownNameError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("did you mean 'survey'?"), std::string::npos) << what;
    EXPECT_NE(what.find("registered workloads are"), std::string::npos) << what;
  }

  core::ScenarioSpec bad_env;
  bad_env.environment = "windy";
  EXPECT_THROW(bad_env.validate(), util::UnknownNameError);
  core::ScenarioSpec bad_bugs;
  bad_bugs.bugs = "currennt";
  EXPECT_THROW(bad_bugs.validate(), util::UnknownNameError);
  EXPECT_NO_THROW(non_default_spec().validate());
}

TEST(ScenarioGrid, ExpandIsTheDeterministicProductPlusExplicitScenarios) {
  core::ScenarioGrid grid;
  grid.approaches = {"avis", "random"};
  grid.personalities = {"ardupilot"};
  grid.workloads = {"auto", "survey"};
  grid.environments = {"calm", "gusty"};
  grid.seed = 5;
  grid.scenarios.push_back(non_default_spec());

  const auto specs = grid.expand();
  ASSERT_EQ(specs.size(), 2u * 1u * 2u * 2u + 1u);
  // (approach, personality, workload, environment) nesting, slowest first.
  EXPECT_EQ(specs[0].approach, "avis");
  EXPECT_EQ(specs[0].workload, "auto");
  EXPECT_EQ(specs[0].environment, "calm");
  EXPECT_EQ(specs[1].environment, "gusty");
  EXPECT_EQ(specs[2].workload, "survey");
  EXPECT_EQ(specs[4].approach, "random");
  // Grid-level seed propagates; strategy_seed derives as seed + 7.
  EXPECT_EQ(specs[0].seed, 5u);
  EXPECT_EQ(specs[0].strategy_seed, 12u);
  // Explicit scenarios ride along verbatim, after the product.
  EXPECT_EQ(specs.back(), non_default_spec());
}

TEST(ScenarioGrid, JsonRoundTripIsIdentity) {
  core::ScenarioGrid grid;
  grid.approaches = {"avis", "sbfi"};
  grid.personalities = {"px4"};
  grid.workloads = {"wind-gust-box"};
  grid.environments = {"breeze", "gusty"};
  grid.bugs = "patched";
  grid.budget_ms = 60000;
  grid.seed = 3;
  grid.strategy_seed = 11;
  grid.constraints.max_plan_events = 2;
  grid.scenarios.push_back(non_default_spec());

  const core::ScenarioGrid reparsed = core::ScenarioGrid::from_json(grid.to_json());
  EXPECT_EQ(reparsed, grid);

  const core::ScenarioGrid defaults;
  EXPECT_EQ(core::ScenarioGrid::from_json(defaults.to_json()), defaults);
}

TEST(Registries, BuiltinsArePresent) {
  for (const char* name : {"avis", "stratified-bfi", "bfi", "random", "sbfi"}) {
    EXPECT_TRUE(core::approach_registry().contains(name)) << name;
  }
  for (const char* name : {"auto", "box-manual", "fence-mission", "wind-gust-box", "survey"}) {
    EXPECT_TRUE(workload::workload_registry().contains(name)) << name;
  }
  for (const char* name : {"calm", "breeze", "gusty"}) {
    EXPECT_TRUE(sim::environment_registry().contains(name)) << name;
  }
  for (const char* name : {"ardupilot", "px4"}) {
    EXPECT_TRUE(core::personality_registry().contains(name)) << name;
  }
  for (const char* name : {"current", "patched", "all"}) {
    EXPECT_TRUE(core::bug_selector_registry().contains(name)) << name;
  }
  // Factories build what their names promise.
  EXPECT_EQ(workload::make_workload("survey")->name(), "survey");
  EXPECT_EQ(workload::make_workload("wind-gust-box")->name(), "wind-gust-box");
  EXPECT_GT(sim::make_environment("gusty").wind().gust_stddev, 0.0);
  EXPECT_EQ(sim::make_environment("calm").wind().mean.x, 0.0);
  EXPECT_TRUE(core::resolve_bugs("patched").enabled_bugs().empty());
  EXPECT_FALSE(core::resolve_bugs("all").enabled_bugs().empty());
  EXPECT_EQ(core::resolve_personality("px4"), fw::Personality::kPx4Like);
  EXPECT_EQ(core::approach_label("avis"), "Avis");
  EXPECT_EQ(core::approach_label("not-registered"), "not-registered");
}

TEST(ScenarioPrototype, ResolvesEveryAxis) {
  core::ScenarioSpec spec;
  spec.personality = "px4";
  spec.workload = "survey";
  spec.environment = "gusty";
  spec.bugs = "patched";
  spec.seed = 42;
  const core::ExperimentSpec prototype = core::scenario_prototype(spec);
  EXPECT_EQ(prototype.personality, fw::Personality::kPx4Like);
  ASSERT_TRUE(static_cast<bool>(prototype.workload_factory));
  EXPECT_EQ(prototype.workload_factory()->name(), "survey");
  ASSERT_TRUE(static_cast<bool>(prototype.environment_factory));
  EXPECT_GT(prototype.environment_factory().wind().gust_stddev, 0.0);
  EXPECT_TRUE(prototype.bugs.enabled_bugs().empty());
  EXPECT_EQ(prototype.seed, 42u);

  // The calm preset stays on the default-environment fast path: no factory
  // object to copy per experiment.
  core::ScenarioSpec calm;
  EXPECT_FALSE(static_cast<bool>(core::scenario_prototype(calm).environment_factory));

  core::ScenarioSpec typo;
  typo.workload = "boxmanual";
  EXPECT_THROW(core::scenario_prototype(typo), util::UnknownNameError);
}

TEST(ScenarioStrategy, ConstraintsParameterizeTheSearch) {
  core::ScenarioSpec spec;
  spec.workload = "auto";
  spec.budget_ms = 600 * 1000;
  spec.constraints.max_set_size = 1;
  spec.constraints.max_plan_events = 1;
  core::Checker checker(core::scenario_prototype(spec));
  const core::MonitorModel& model = checker.model();
  auto strategy = core::make_scenario_strategy(spec, model);
  core::BudgetClock budget(spec.budget_ms);
  // Under max_plan_events = 1 every plan SABRE proposes is a singleton.
  int plans = 0;
  while (plans < 40) {
    auto plan = strategy->next(budget);
    if (!plan) break;
    EXPECT_EQ(plan->size(), 1u) << plan->to_string();
    ++plans;
  }
  EXPECT_GT(plans, 0);
}

// A dumped scenario document, parsed back and run, must be report-identical
// to the same grid built directly — the --scenario-file vs CSV-flag
// contract of tools/avis_campaign (timing fields excluded; they are wall
// clock).
TEST(ScenarioCampaign, DumpedDocumentIsReportIdenticalToDirectGrid) {
  core::ScenarioGrid grid;
  grid.approaches = {"avis", "random"};
  grid.personalities = {"ardupilot"};
  grid.workloads = {"auto"};
  grid.budget_ms = 300 * 1000;

  const core::ScenarioGrid reparsed = core::ScenarioGrid::from_json(grid.to_json());
  EXPECT_EQ(reparsed, grid);

  core::CampaignOptions options;
  options.cell_workers = 1;
  options.experiment_workers = 1;
  const core::CampaignRunner runner(options);
  const core::CampaignResult direct = runner.run(core::expand_to_cells(grid));
  const core::CampaignResult from_file = runner.run(core::expand_to_cells(reparsed));

  ASSERT_EQ(direct.cells.size(), 2u);
  ASSERT_EQ(from_file.cells.size(), direct.cells.size());
  ASSERT_GE(direct.cells[0].report.experiments, 2);
  for (std::size_t i = 0; i < direct.cells.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    avis::testing::expect_reports_equal(direct.cells[i].report, from_file.cells[i].report);
  }

  // The JSON reports agree line for line once wall-clock timing lines are
  // dropped.
  auto strip_timing = [](const std::string& json) {
    std::string out;
    std::size_t start = 0;
    while (start < json.size()) {
      std::size_t end = json.find('\n', start);
      if (end == std::string::npos) end = json.size();
      const std::string_view line(json.data() + start, end - start);
      if (line.find("wall_seconds") == std::string_view::npos &&
          line.find("experiments_per_sec") == std::string_view::npos) {
        out.append(line);
        out.push_back('\n');
      }
      start = end + 1;
    }
    return out;
  };
  EXPECT_EQ(strip_timing(core::campaign_report_json(direct)),
            strip_timing(core::campaign_report_json(from_file)));
}

// The diversity claim: a scenario file whose grid names a post-paper
// workload and a post-paper environment preset runs end to end.
TEST(ScenarioCampaign, NewWorkloadAndEnvironmentRunEndToEnd) {
  const char* document = R"({
    "approaches": ["avis"],
    "personalities": ["ardupilot"],
    "workloads": ["wind-gust-box"],
    "environments": ["gusty"],
    "budget_ms": 60000
  })";
  const core::ScenarioGrid grid = core::ScenarioGrid::from_json(std::string_view(document));
  const core::CampaignResult result = core::CampaignRunner().run(grid);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_GE(result.cells[0].report.experiments, 1);
  const std::string json = core::campaign_report_json(result);
  EXPECT_NE(json.find("\"workload\": \"wind-gust-box\""), std::string::npos);
  EXPECT_NE(json.find("\"environment\": \"gusty\""), std::string::npos);
}

}  // namespace
