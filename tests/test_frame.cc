// Frame transport under hostile and chaotic conditions (src/net/frame.h,
// src/net/chaos.h).
//
// The robustness contract, in the spirit of the JSON-parser corruption
// tests: no sequence of wire bytes — torn writes, bit flips, duplicated
// frames, hostile length prefixes — may produce undefined behaviour or a
// hang. Every corruption class lands in a typed exception (NetError /
// PeerClosed / ProtocolError) within a bounded number of polls.
//
// The chaos layer's own contract is determinism: the event trace is a pure
// function of (seed, stream, frame ordinal), which is what makes chaos
// sweeps reproducible (docs/DISTRIBUTED.md, "Chaos testing").
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/chaos.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace {

using namespace avis;
using Clock = std::chrono::steady_clock;

net::Socket must_accept(net::Listener& listener) {
  auto socket = listener.accept(5000);
  if (!socket) throw std::runtime_error("accept timed out");
  return std::move(*socket);
}

// A loopback connection with a FrameChannel on both ends: client sends,
// server receives.
class ChannelPair {
 public:
  ChannelPair()
      : listener_(0),
        client_(net::connect_to("127.0.0.1", listener_.port())),
        server_(must_accept(listener_)) {}

  net::FrameChannel& client() { return client_; }
  net::FrameChannel& server() { return server_; }

 private:
  net::Listener listener_;
  net::FrameChannel client_;
  net::FrameChannel server_;
};

net::ChaosEvent scripted(net::ChaosAction action, int delay_ms = 0,
                         std::size_t keep_bytes = 0) {
  net::ChaosEvent event;
  event.action = action;
  event.delay_ms = delay_ms;
  event.keep_bytes = keep_bytes;
  return event;
}

void install_script(net::FrameChannel& channel, std::vector<net::ChaosEvent> script) {
  channel.set_chaos(std::make_unique<net::ChaosPolicy>(std::move(script)));
}

// Bounded receive: a frame within deadline_ms, nullopt on timeout — never
// an unbounded wait.
std::optional<std::string> recv_within(net::FrameChannel& channel, int deadline_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (Clock::now() < deadline) {
    if (auto frame = channel.poll_frame(20)) return frame;
  }
  return std::nullopt;
}

// Polls until the channel throws PeerClosed; fails the test if anything
// else happens first (a decoded frame, a different exception, the deadline).
void expect_peer_closed_within(net::FrameChannel& channel, int deadline_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  while (Clock::now() < deadline) {
    try {
      if (auto frame = channel.poll_frame(20)) {
        FAIL() << "received a complete frame from a torn write: " << *frame;
      }
    } catch (const net::PeerClosed&) {
      return;  // the corruption surfaced as the typed, expected outcome
    }
  }
  FAIL() << "no PeerClosed within " << deadline_ms << " ms";
}

std::vector<std::uint8_t> le32(std::uint32_t value) {
  return {static_cast<std::uint8_t>(value & 0xff),
          static_cast<std::uint8_t>((value >> 8) & 0xff),
          static_cast<std::uint8_t>((value >> 16) & 0xff),
          static_cast<std::uint8_t>((value >> 24) & 0xff)};
}

// --- Corruption table -------------------------------------------------

// A length prefix past the frame ceiling is a hostile or mis-framed stream:
// typed NetError, no 4 GiB allocation attempt.
TEST(FrameCorruption, OversizedLengthPrefixIsNetError) {
  ChannelPair pair;
  pair.client().socket().send_all(le32(net::kMaxFrameBytes + 1));
  EXPECT_THROW(
      {
        const auto deadline = Clock::now() + std::chrono::seconds(5);
        while (Clock::now() < deadline) pair.server().poll_frame(20);
      },
      net::NetError);
}

// Truncation at every interesting prefix class: inside the length prefix
// (0..3), exactly the prefix (4), one payload byte (5), and one byte short
// of complete. The peer must see PeerClosed — never a frame, never a hang.
TEST(FrameCorruption, TruncationAtEveryPrefixClassIsPeerClosedNotHang) {
  const std::string payload = net::encode(net::Message{net::Heartbeat{}});
  const std::size_t framed = 4 + payload.size();
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, framed - 1}) {
    SCOPED_TRACE("keep_bytes=" + std::to_string(keep));
    ChannelPair pair;
    install_script(pair.client(), {scripted(net::ChaosAction::kTruncate, 0, keep)});
    EXPECT_THROW(pair.client().send(payload), net::PeerClosed);
    expect_peer_closed_within(pair.server(), 5000);
  }
}

// A duplicated frame arrives twice, byte-identical — the receiver sees two
// valid copies, not a corrupted stream.
TEST(FrameCorruption, DuplicatedFrameArrivesTwiceIdentically) {
  ChannelPair pair;
  install_script(pair.client(), {scripted(net::ChaosAction::kDuplicate)});
  const std::string payload = net::encode(net::Message{net::Heartbeat{}});
  pair.client().send(payload);
  const auto first = recv_within(pair.server(), 3000);
  const auto second = recv_within(pair.server(), 3000);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, payload);
  EXPECT_EQ(*second, payload);
}

// A dropped frame vanishes without a trace but the link survives: the next
// frame arrives intact and in order.
TEST(FrameCorruption, DroppedFrameVanishesButLinkSurvives) {
  ChannelPair pair;
  install_script(pair.client(), {scripted(net::ChaosAction::kDrop)});
  pair.client().send("swallowed by the network");
  const std::string payload = net::encode(net::Message{net::Heartbeat{}});
  pair.client().send(payload);
  const auto received = recv_within(pair.server(), 3000);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, payload);  // the dropped frame, not a torn prefix of it
}

// A delayed frame still arrives whole; delay affects timing only, never
// content.
TEST(FrameCorruption, DelayedFrameArrivesIntact) {
  ChannelPair pair;
  install_script(pair.client(), {scripted(net::ChaosAction::kDelay, 30)});
  const std::string payload = net::encode(net::Message{net::Heartbeat{}});
  const auto start = Clock::now();
  pair.client().send(payload);
  EXPECT_GE(Clock::now() - start, std::chrono::milliseconds(30));
  const auto received = recv_within(pair.server(), 3000);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, payload);
}

// Severing cuts both directions: the sender gets PeerClosed immediately,
// the receiver on its next poll.
TEST(FrameCorruption, SeveredConnectionIsPeerClosedOnBothEnds) {
  ChannelPair pair;
  install_script(pair.client(), {scripted(net::ChaosAction::kSever)});
  EXPECT_THROW(pair.client().send("never leaves the host"), net::PeerClosed);
  expect_peer_closed_within(pair.server(), 5000);
}

// Bit flips inside a delivered payload reach the decoder, which must answer
// with ProtocolError or a decoded (possibly different) message — never UB,
// never a raw JsonError escaping the net layer.
TEST(FrameCorruption, BitFlippedPayloadDecodesToProtocolErrorNotUb) {
  net::Hello hello;
  hello.worker_id = "w1";
  hello.auth = "secret";
  const std::string payload = net::encode(net::Message{hello});
  for (std::size_t i = 0; i < payload.size(); ++i) {
    for (const std::uint8_t mask : {0x01, 0x20, 0x80}) {
      std::string corrupt = payload;
      corrupt[i] = static_cast<char>(corrupt[i] ^ mask);
      try {
        (void)net::decode(corrupt);
      } catch (const net::ProtocolError&) {
        // The expected typed failure.
      }
    }
  }
  // And a whole-cloth garbage payload (embedded NUL included), shipped over
  // a real channel.
  ChannelPair pair;
  const std::string garbage("\x00\xff not json at all", 18);
  pair.client().send(garbage);
  const auto received = recv_within(pair.server(), 3000);
  ASSERT_TRUE(received.has_value());
  EXPECT_THROW(net::decode(*received), net::ProtocolError);
}

// --- Chaos determinism ------------------------------------------------

// The event trace is a pure function of (seed, stream, frame): same seed
// and stream reproduce it exactly; changing either changes the schedule.
TEST(Chaos, TraceIsPureFunctionOfSeedStreamAndFrame) {
  net::ChaosConfig config;
  config.seed = 42;
  config.drop = 0.2;
  config.delay = 0.2;
  config.truncate = 0.1;
  config.duplicate = 0.2;

  net::ChaosPolicy a(config, 1);
  net::ChaosPolicy b(config, 1);
  for (int frame = 0; frame < 200; ++frame) {
    const std::size_t framed_bytes = 32 + static_cast<std::size_t>(frame % 7) * 100;
    ASSERT_EQ(a.next(framed_bytes), b.next(framed_bytes)) << "frame " << frame;
  }
  EXPECT_EQ(a.trace(), b.trace());

  net::ChaosConfig reseeded = config;
  reseeded.seed = 43;
  net::ChaosPolicy c(reseeded, 1);
  net::ChaosPolicy d(config, 2);  // same seed, different stream
  bool c_differs = false, d_differs = false;
  for (int frame = 0; frame < 200; ++frame) {
    const std::size_t framed_bytes = 32 + static_cast<std::size_t>(frame % 7) * 100;
    if (c.next(framed_bytes) != a.trace()[static_cast<std::size_t>(frame)]) c_differs = true;
    if (d.next(framed_bytes) != a.trace()[static_cast<std::size_t>(frame)]) d_differs = true;
  }
  EXPECT_TRUE(c_differs);  // different seed, different schedule
  EXPECT_TRUE(d_differs);  // different connection, different schedule
}

// Decisions never depend on what earlier frames carried: two policies fed
// different byte sizes still pick the same actions (sizes only scale the
// truncation point).
TEST(Chaos, ActionsIndependentOfPayloadHistory) {
  net::ChaosConfig config;
  config.seed = 7;
  net::ChaosPolicy a(config, 0);
  net::ChaosPolicy b(config, 0);
  for (int frame = 0; frame < 200; ++frame) {
    const net::ChaosEvent ea = a.next(64);
    const net::ChaosEvent eb = b.next(64 + static_cast<std::size_t>(frame) * 31);
    EXPECT_EQ(ea.action, eb.action) << "frame " << frame;
  }
}

// Truncation always keeps a strict prefix: keep_bytes < framed bytes, so
// the peer is guaranteed a torn frame, never an accidental complete one.
TEST(Chaos, TruncationKeepsStrictPrefix) {
  net::ChaosConfig config;
  config.seed = 11;
  config.drop = 0;
  config.delay = 0;
  config.duplicate = 0;
  config.truncate = 1.0;  // every frame truncates
  net::ChaosPolicy policy(config, 0);
  for (int frame = 0; frame < 100; ++frame) {
    const std::size_t framed_bytes = 5 + static_cast<std::size_t>(frame % 50);
    const net::ChaosEvent event = policy.next(framed_bytes);
    ASSERT_EQ(event.action, net::ChaosAction::kTruncate);
    EXPECT_LT(event.keep_bytes, framed_bytes) << "frame " << frame;
  }
}

// sever_after_frames is the scripted analogue of SIGKILLing a peer: N clean
// frames, then the cut, deterministically.
TEST(Chaos, SeverAfterNFramesCutsExactlyThere) {
  net::ChaosConfig config;
  config.seed = 5;
  config.drop = config.delay = config.truncate = config.duplicate = 0;
  config.sever_after_frames = 3;
  net::ChaosPolicy policy(config, 0);
  for (int frame = 0; frame < 3; ++frame) {
    EXPECT_EQ(policy.next(64).action, net::ChaosAction::kPass) << "frame " << frame;
  }
  EXPECT_EQ(policy.next(64).action, net::ChaosAction::kSever);
  EXPECT_EQ(policy.next(64).action, net::ChaosAction::kSever);  // stays severed
}

// Scripted mode replays the script verbatim and passes beyond it — the
// fixture contract the corruption table above rests on.
TEST(Chaos, ScriptedModeReplaysVerbatimThenPasses) {
  net::ChaosPolicy policy({scripted(net::ChaosAction::kDrop),
                           scripted(net::ChaosAction::kDelay, 10)});
  EXPECT_EQ(policy.next(64).action, net::ChaosAction::kDrop);
  const net::ChaosEvent second = policy.next(64);
  EXPECT_EQ(second.action, net::ChaosAction::kDelay);
  EXPECT_EQ(second.delay_ms, 10);
  EXPECT_EQ(policy.next(64).action, net::ChaosAction::kPass);
  ASSERT_EQ(policy.trace().size(), 3u);
  EXPECT_EQ(policy.trace()[2].frame, 2u);
}

}  // namespace
