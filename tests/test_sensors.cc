#include <gtest/gtest.h>

#include <cmath>

#include "sensors/sensor_models.h"
#include "sim/environment.h"
#include "sim/vehicle_state.h"
#include "util/rng.h"

namespace avis::sensors {
namespace {

class SensorTest : public ::testing::Test {
 protected:
  sim::Environment env_;
  sim::VehicleState truth_;
  util::Rng seeds_{42};
};

TEST_F(SensorTest, GyroTracksBodyRates) {
  Gyroscope gyro({SensorType::kGyroscope, 0}, seeds_.fork(0));
  truth_.body_rates = {0.5, -0.2, 0.1};
  GyroSample s;
  ASSERT_EQ(gyro.read(0, truth_, env_, s), ReadStatus::kOk);
  EXPECT_NEAR(s.body_rates.x, 0.5, 0.05);
  EXPECT_NEAR(s.body_rates.y, -0.2, 0.05);
}

TEST_F(SensorTest, AccelMeasuresMinusGravityAtRest) {
  Accelerometer accel({SensorType::kAccelerometer, 0}, seeds_.fork(1));
  truth_.acceleration = {};  // supported by the ground
  AccelSample s;
  ASSERT_EQ(accel.read(0, truth_, env_, s), ReadStatus::kOk);
  EXPECT_NEAR(s.specific_force.z, -9.80665, 0.3);
  EXPECT_NEAR(s.specific_force.x, 0.0, 0.3);
}

TEST_F(SensorTest, BaroMeasuresAltitude) {
  Barometer baro({SensorType::kBarometer, 0}, seeds_.fork(2));
  truth_.position.z = -25.0;
  BaroSample s;
  ASSERT_EQ(baro.read(0, truth_, env_, s), ReadStatus::kOk);
  EXPECT_NEAR(s.pressure_altitude_m, 25.0, 1.0);
}

TEST_F(SensorTest, GpsReportsGeodeticFix) {
  Gps gps({SensorType::kGps, 0}, seeds_.fork(3));
  truth_.position = {100.0, 50.0, -20.0};
  GpsSample s;
  ASSERT_EQ(gps.read(0, truth_, env_, s), ReadStatus::kOk);
  EXPECT_TRUE(s.has_fix);
  EXPECT_GT(s.num_satellites, 4);
  const geo::Vec3 local = env_.frame().to_local(s.position);
  EXPECT_NEAR(local.x, 100.0, 5.0);
  EXPECT_NEAR(local.y, 50.0, 5.0);
  // Vertical is coarse by design (the Fig. 1 hazard).
  EXPECT_NEAR(local.z, -20.0, 12.0);
}

TEST_F(SensorTest, CompassMeasuresHeading) {
  Compass compass({SensorType::kCompass, 0}, seeds_.fork(4));
  truth_.attitude.yaw = 1.0;
  CompassSample s;
  ASSERT_EQ(compass.read(0, truth_, env_, s), ReadStatus::kOk);
  EXPECT_NEAR(s.heading_rad, 1.0, 0.1);
}

TEST_F(SensorTest, BatteryReportsVoltageAndFraction) {
  BatterySensor battery({SensorType::kBattery, 0}, seeds_.fork(5));
  truth_.battery_voltage = 11.5;
  truth_.battery_remaining = 0.6;
  BatterySample s;
  ASSERT_EQ(battery.read(0, truth_, env_, s), ReadStatus::kOk);
  EXPECT_NEAR(s.voltage, 11.5, 0.2);
  EXPECT_DOUBLE_EQ(s.remaining_fraction, 0.6);
}

TEST_F(SensorTest, FailureLatchesForever) {
  Barometer baro({SensorType::kBarometer, 0}, seeds_.fork(6));
  BaroSample s;
  EXPECT_EQ(baro.read(0, truth_, env_, s), ReadStatus::kOk);
  baro.fail();
  EXPECT_TRUE(baro.failed());
  for (sim::SimTimeMs t = 1; t < 1000; t += 100) {
    EXPECT_EQ(baro.read(t, truth_, env_, s), ReadStatus::kFailed);
  }
}

TEST_F(SensorTest, NativeRateHoldsSamples) {
  // GPS samples at 5 Hz: reads within 200 ms return the same held sample.
  Gps gps({SensorType::kGps, 0}, seeds_.fork(7));
  truth_.position = {10.0, 0.0, -10.0};
  GpsSample first;
  ASSERT_EQ(gps.read(0, truth_, env_, first), ReadStatus::kOk);
  truth_.position = {20.0, 0.0, -10.0};  // vehicle moved
  GpsSample held;
  ASSERT_EQ(gps.read(100, truth_, env_, held), ReadStatus::kOk);
  EXPECT_EQ(held.position, first.position);  // still the old fix
  GpsSample fresh;
  ASSERT_EQ(gps.read(250, truth_, env_, fresh), ReadStatus::kOk);
  EXPECT_NE(fresh.position, first.position);
}

TEST_F(SensorTest, NoiseIsSeedDeterministic) {
  Barometer a({SensorType::kBarometer, 0}, util::Rng(99));
  Barometer b({SensorType::kBarometer, 0}, util::Rng(99));
  truth_.position.z = -10.0;
  BaroSample sa, sb;
  for (sim::SimTimeMs t = 0; t < 500; t += 20) {
    a.read(t, truth_, env_, sa);
    b.read(t, truth_, env_, sb);
    EXPECT_DOUBLE_EQ(sa.pressure_altitude_m, sb.pressure_altitude_m);
  }
}

TEST(SuiteConfig, CountsPerType) {
  SuiteConfig config;
  config.gyroscopes = 2;
  config.compasses = 3;
  EXPECT_EQ(config.count(SensorType::kGyroscope), 2);
  EXPECT_EQ(config.count(SensorType::kCompass), 3);
  EXPECT_EQ(config.total(), 2 + 2 + 1 + 1 + 3 + 1);
}

TEST(SensorSuite, FailByIdAndQuery) {
  SuiteConfig config;
  config.compasses = 3;
  util::Rng seeds(5);
  SensorSuite suite(config, seeds);
  const SensorId backup{SensorType::kCompass, 1};
  EXPECT_FALSE(suite.is_failed(backup));
  EXPECT_TRUE(suite.fail(backup));
  EXPECT_TRUE(suite.is_failed(backup));
  EXPECT_FALSE(suite.is_failed({SensorType::kCompass, 0}));
  // Nonexistent instance is rejected.
  EXPECT_FALSE(suite.fail({SensorType::kBarometer, 5}));
}

TEST(SensorSuite, AllIdsDeterministicOrder) {
  SuiteConfig config;
  util::Rng seeds(5);
  SensorSuite suite(config, seeds);
  const auto ids = suite.all_ids();
  EXPECT_EQ(static_cast<int>(ids.size()), config.total());
  EXPECT_EQ(ids.front().type, SensorType::kGyroscope);
  EXPECT_EQ(ids.front().instance, 0);
}

TEST(SensorId, RoleFromInstance) {
  EXPECT_EQ((SensorId{SensorType::kGps, 0}).role(), SensorRole::kPrimary);
  EXPECT_EQ((SensorId{SensorType::kGps, 1}).role(), SensorRole::kBackup);
  EXPECT_EQ((SensorId{SensorType::kCompass, 2}).role(), SensorRole::kBackup);
}

TEST(SensorId, ToStringAndHash) {
  const SensorId id{SensorType::kCompass, 1};
  EXPECT_EQ(id.to_string(), "compass#1");
  std::hash<SensorId> hasher;
  EXPECT_NE(hasher(id), hasher(SensorId{SensorType::kCompass, 2}));
}

}  // namespace
}  // namespace avis::sensors
