#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bytes.h"
#include "util/checked.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/table.h"

namespace avis::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ForkedStreamsAreIndependentOfParentDraws) {
  Rng parent1(5);
  Rng parent2(5);
  Rng fork1 = parent1.fork(3);
  // Parent 2 draws before forking; fork identity depends only on parent
  // state at fork time, which differs -> streams differ.
  parent2.next_u64();
  Rng fork2 = parent2.fork(3);
  EXPECT_NE(fork1.next_u64(), fork2.next_u64());
}

TEST(Rng, ChanceProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u16(), WireError);
}

TEST(Bytes, EmptyStringRoundTrip) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
}

TEST(Bytes, NegativeDoubleRoundTrip) {
  ByteWriter w;
  w.f64(-0.0);
  w.f64(-1e308);
  ByteReader r(w.bytes());
  EXPECT_EQ(std::signbit(r.f64()), true);
  EXPECT_DOUBLE_EQ(r.f64(), -1e308);
}

TEST(Checked, NarrowAcceptsFittingValues) {
  EXPECT_EQ(narrow<std::uint8_t>(200), 200);
  EXPECT_EQ(narrow<int>(12345L), 12345);
}

TEST(Checked, NarrowRejectsOverflow) {
  EXPECT_THROW(narrow<std::uint8_t>(300), InvariantError);
  EXPECT_THROW(narrow<std::uint8_t>(-1), InvariantError);
}

TEST(Checked, ExpectsThrowsOnFalse) {
  EXPECT_NO_THROW(expects(true, "fine"));
  EXPECT_THROW(expects(false, "boom"), InvariantError);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"a", "bbbb"});
  t.add("x", 1);
  t.add("long-cell", 2.5);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| a         | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("long-cell"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
}

TEST(Logger, SinkReceivesEnabledLevels) {
  auto& logger = Logger::instance();
  const LogLevel old_level = logger.level();
  std::vector<std::string> captured;
  logger.set_level(LogLevel::kInfo);
  logger.set_sink([&](LogLevel, std::string_view msg) { captured.emplace_back(msg); });
  log_debug() << "hidden";
  log_info() << "visible " << 42;
  logger.set_sink(nullptr);
  logger.set_level(old_level);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "visible 42");
}

}  // namespace
}  // namespace avis::util
