// ThreadPool: task completion, exception propagation, shutdown semantics.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <vector>

namespace {

using avis::util::ThreadPool;

TEST(ThreadPool, RunsEveryTaskAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4);
  std::atomic<int> ran{0};
  std::vector<std::future<int>> results;
  for (int i = 0; i < 64; ++i) {
    results.push_back(pool.submit([i, &ran] {
      ++ran;
      return i * i;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, PropagatesTaskExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto boom = pool.submit([]() -> int { throw std::runtime_error("injected"); });
  EXPECT_EQ(ok.get(), 7);
  try {
    boom.get();
    FAIL() << "expected the task's exception to be rethrown";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "injected");
  }
}

TEST(ThreadPool, VoidTasksComplete) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto done = pool.submit([&ran] { ++ran; });
  done.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, DestructionMidQueueDoesNotDeadlock) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> results;
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      results.push_back(pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++ran;
      }));
    }
    // Destroy the pool while most tasks are still queued: running tasks
    // finish, queued tasks are abandoned, workers join. Reaching the
    // assertions below at all is the no-deadlock check.
  }
  int completed = 0;
  int abandoned = 0;
  for (auto& result : results) {
    try {
      result.get();
      ++completed;
    } catch (const std::future_error& err) {
      EXPECT_EQ(err.code(), std::make_error_code(std::future_errc::broken_promise));
      ++abandoned;
    }
  }
  EXPECT_EQ(completed + abandoned, 16);
  EXPECT_EQ(completed, ran.load());
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), avis::util::InvariantError);
}

}  // namespace
