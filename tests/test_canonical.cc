#include <gtest/gtest.h>

#include <set>

#include "core/canonical.h"

namespace avis::core {
namespace {

using sensors::SensorId;
using sensors::SensorType;
using sensors::SuiteConfig;

TEST(CanonicalCounts, PaperFormula) {
  // N x (2^N - 1) -> 2N - 1 (paper §IV-B-1).
  EXPECT_EQ(unreduced_count(3), 21);  // the paper's example
  EXPECT_EQ(canonical_count(3), 5);
  EXPECT_EQ(canonical_count(1), 1);
  EXPECT_EQ(unreduced_count(1), 1);
  EXPECT_EQ(canonical_count(0), 0);
}

// Property sweep: the formulas hold for every N, and the enumeration yields
// exactly 2N-1 role-distinct non-empty sets for a single type.
class SymmetrySweep : public ::testing::TestWithParam<int> {};

TEST_P(SymmetrySweep, EnumerationMatchesFormula) {
  const int n = GetParam();
  SuiteConfig config;
  config.gyroscopes = 0;
  config.accelerometers = 0;
  config.barometers = 0;
  config.gpses = 0;
  config.compasses = n;
  config.batteries = 0;

  int canonical_total = 0;
  for (int size = 1; size <= n; ++size) {
    canonical_total += static_cast<int>(canonical_sets_of_size(config, size).size());
  }
  EXPECT_EQ(canonical_total, canonical_count(n));

  long long unreduced_total = 0;
  for (int size = 1; size <= n; ++size) {
    unreduced_total += static_cast<long long>(all_instance_sets_of_size(config, size).size());
  }
  // All non-empty instance subsets: 2^N - 1.
  EXPECT_EQ(unreduced_total, (1LL << n) - 1);
}

INSTANTIATE_TEST_SUITE_P(N1to8, SymmetrySweep, ::testing::Range(1, 9));

TEST(CanonicalSets, ConcreteInstancesArePrimaryThenLowBackups) {
  SuiteConfig config;
  config.gyroscopes = 0;
  config.accelerometers = 0;
  config.barometers = 0;
  config.gpses = 0;
  config.compasses = 3;
  config.batteries = 0;
  const auto sets = canonical_sets_of_size(config, 2);
  // Size-2 canonical sets for one 3-instance type: {P,B1} and {B1,B2}.
  ASSERT_EQ(sets.size(), 2u);
  std::set<std::string> repr;
  for (const auto& set : sets) {
    std::string s;
    for (const auto& id : set) s += std::to_string(id.instance);
    repr.insert(s);
  }
  EXPECT_TRUE(repr.contains("01"));  // primary + one backup
  EXPECT_TRUE(repr.contains("12"));  // two backups
}

TEST(CanonicalSets, CrossTypeProducts) {
  SuiteConfig config;  // defaults: gyro 2, accel 2, baro 1, gps 1, compass 2, battery 1
  const auto singles = canonical_sets_of_size(config, 1);
  // Per type: gyro {P},{B}; accel {P},{B}; baro {P}; gps {P}; compass {P},{B};
  // battery {P} -> 9 singleton options.
  EXPECT_EQ(singles.size(), 9u);
  for (const auto& set : singles) EXPECT_EQ(set.size(), 1u);
}

TEST(CanonicalSets, SizeLimitsRespected) {
  SuiteConfig config;
  const auto pairs = canonical_sets_of_size(config, 2);
  for (const auto& set : pairs) EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(pairs.empty());
  // No set may contain more instances of a type than the suite has.
  for (const auto& set : pairs) {
    std::map<SensorType, int> counts;
    for (const auto& id : set) counts[id.type]++;
    for (const auto& [type, count] : counts) {
      EXPECT_LE(count, config.count(type));
    }
  }
}

TEST(AllInstanceSets, CountsAreBinomial) {
  SuiteConfig config;
  config.gyroscopes = 0;
  config.accelerometers = 0;
  config.barometers = 1;
  config.gpses = 1;
  config.compasses = 3;
  config.batteries = 1;  // 6 instances total
  EXPECT_EQ(all_instance_sets_of_size(config, 1).size(), 6u);
  EXPECT_EQ(all_instance_sets_of_size(config, 2).size(), 15u);  // C(6,2)
  EXPECT_EQ(all_instance_sets_of_size(config, 3).size(), 20u);  // C(6,3)
}

}  // namespace
}  // namespace avis::core
