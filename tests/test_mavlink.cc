#include <gtest/gtest.h>

#include "mavlink/channel.h"
#include "mavlink/codec.h"
#include "mavlink/messages.h"
#include "mavlink/mission_protocol.h"

namespace avis::mavlink {
namespace {

template <typename T>
T round_trip(const T& message) {
  const Message decoded = decode_payload(message_id(Message{message}),
                                         encode_payload(Message{message}));
  const T* out = std::get_if<T>(&decoded);
  EXPECT_NE(out, nullptr);
  return out ? *out : T{};
}

TEST(Messages, HeartbeatRoundTrip) {
  Heartbeat hb;
  hb.system_status = 4;
  hb.custom_mode = 0x0501;
  hb.armed = true;
  const Heartbeat out = round_trip(hb);
  EXPECT_EQ(out.system_status, 4);
  EXPECT_EQ(out.custom_mode, 0x0501u);
  EXPECT_TRUE(out.armed);
}

TEST(Messages, GlobalPositionRoundTrip) {
  GlobalPositionInt gp;
  gp.time_ms = 123456;
  gp.position = {40.001, -83.002, 231.5};
  gp.relative_alt_m = 31.5;
  gp.velocity_ned = {1.5, -2.5, 0.25};
  gp.heading_rad = 1.57;
  const GlobalPositionInt out = round_trip(gp);
  EXPECT_EQ(out.time_ms, 123456);
  EXPECT_DOUBLE_EQ(out.position.latitude_deg, 40.001);
  EXPECT_DOUBLE_EQ(out.velocity_ned.y, -2.5);
  EXPECT_DOUBLE_EQ(out.heading_rad, 1.57);
}

TEST(Messages, MissionItemRoundTrip) {
  MissionItem item;
  item.seq = 3;
  item.command = Command::kNavWaypoint;
  item.param1 = 2.5;
  item.position = {40.0001, -83.0001, 220.0};
  const MissionItem out = round_trip(item);
  EXPECT_EQ(out.seq, 3);
  EXPECT_EQ(out.command, Command::kNavWaypoint);
  EXPECT_DOUBLE_EQ(out.param1, 2.5);
}

TEST(Messages, CommandLongRoundTrip) {
  CommandLong cmd;
  cmd.command = Command::kNavTakeoff;
  cmd.param1 = 1.0;
  cmd.param7 = 20.0;
  const CommandLong out = round_trip(cmd);
  EXPECT_EQ(out.command, Command::kNavTakeoff);
  EXPECT_DOUBLE_EQ(out.param7, 20.0);
}

TEST(Messages, StatusTextRoundTrip) {
  StatusText st;
  st.severity = 2;
  st.text = "fence breach: RTL";
  const StatusText out = round_trip(st);
  EXPECT_EQ(out.severity, 2);
  EXPECT_EQ(out.text, "fence breach: RTL");
}

TEST(Messages, RcOverrideRoundTrip) {
  RcOverride rc;
  rc.roll = 0.5;
  rc.pitch = -0.85;
  rc.throttle = 0.1;
  rc.yaw = -0.2;
  const RcOverride out = round_trip(rc);
  EXPECT_DOUBLE_EQ(out.pitch, -0.85);
  EXPECT_DOUBLE_EQ(out.yaw, -0.2);
}

TEST(Messages, FenceEnableRoundTrip) {
  FenceEnable fe;
  fe.enable = true;
  fe.max_north = 28.0;
  fe.max_altitude = 40.0;
  const FenceEnable out = round_trip(fe);
  EXPECT_TRUE(out.enable);
  EXPECT_DOUBLE_EQ(out.max_north, 28.0);
}

TEST(Messages, AckAndRequestRoundTrips) {
  EXPECT_EQ(round_trip(MissionRequest{5}).seq, 5);
  EXPECT_EQ(round_trip(MissionCount{9}).count, 9);
  EXPECT_EQ(round_trip(MissionItemReached{4}).seq, 4);
  EXPECT_EQ(round_trip(MissionAck{MissionResult::kInvalidSequence}).result,
            MissionResult::kInvalidSequence);
  CommandAck ack;
  ack.command = Command::kComponentArmDisarm;
  ack.result = CommandResult::kDenied;
  EXPECT_EQ(round_trip(ack).result, CommandResult::kDenied);
}

TEST(Codec, FrameRoundTrip) {
  Frame f;
  f.seq = 7;
  f.system_id = 255;
  f.component_id = 1;
  f.msg_id = MsgId::kCommandLong;
  f.payload = {1, 2, 3, 4, 5};
  const auto bytes = encode_frame(f);
  const auto out = decode_frame(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->seq, 7);
  EXPECT_EQ(out->system_id, 255);
  EXPECT_EQ(out->payload, f.payload);
}

TEST(Codec, CorruptedCrcRejected) {
  auto bytes = pack(Heartbeat{}, 0, 1, 1);
  bytes[bytes.size() / 2] ^= 0xFF;
  EXPECT_FALSE(unpack(bytes).has_value());
}

TEST(Codec, TruncatedFrameRejected) {
  auto bytes = pack(Heartbeat{}, 0, 1, 1);
  bytes.pop_back();
  EXPECT_FALSE(decode_frame(bytes).has_value());
}

TEST(Codec, BadStxRejected) {
  auto bytes = pack(Heartbeat{}, 0, 1, 1);
  bytes[0] = 0x00;
  EXPECT_FALSE(decode_frame(bytes).has_value());
}

TEST(Codec, CrcX25KnownVector) {
  // CRC-16/MCRF4XX of "123456789" is 0x6F91.
  const char* data = "123456789";
  EXPECT_EQ(crc_x25(reinterpret_cast<const std::uint8_t*>(data), 9), 0x6F91);
}

TEST(Channel, DuplexDelivery) {
  Channel channel;
  channel.gcs().send(CommandLong{Command::kNavTakeoff, 0, 0, 0, 0, 0, 0, 20.0});
  auto at_vehicle = channel.vehicle().receive();
  ASSERT_TRUE(at_vehicle.has_value());
  EXPECT_NE(std::get_if<CommandLong>(&*at_vehicle), nullptr);

  channel.vehicle().send(StatusText{6, "armed"});
  auto at_gcs = channel.gcs().receive();
  ASSERT_TRUE(at_gcs.has_value());
  EXPECT_EQ(std::get_if<StatusText>(&*at_gcs)->text, "armed");
}

TEST(Channel, OrderPreserved) {
  Channel channel;
  for (std::uint16_t i = 0; i < 5; ++i) channel.gcs().send(MissionRequest{i});
  for (std::uint16_t i = 0; i < 5; ++i) {
    auto msg = channel.vehicle().receive();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get_if<MissionRequest>(&*msg)->seq, i);
  }
  EXPECT_FALSE(channel.vehicle().receive().has_value());
}

TEST(MissionUploader, CompletesHandshake) {
  Channel channel;
  MissionUploader uploader(channel.gcs());
  std::vector<MissionItem> items(3);
  uploader.start(items);
  EXPECT_EQ(uploader.phase(), MissionUploader::Phase::kAwaitingRequests);

  // Vehicle side: expect COUNT, then request each item in turn.
  auto count_msg = channel.vehicle().receive();
  ASSERT_TRUE(count_msg.has_value());
  EXPECT_EQ(std::get_if<MissionCount>(&*count_msg)->count, 3);

  for (std::uint16_t seq = 0; seq < 3; ++seq) {
    channel.vehicle().send(MissionRequest{seq});
    auto request = channel.gcs().receive();
    ASSERT_TRUE(request.has_value());
    auto leftover = uploader.handle(std::move(*request));
    EXPECT_FALSE(leftover.has_value());  // consumed by the uploader
    auto item = channel.vehicle().receive();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(std::get_if<MissionItem>(&*item)->seq, seq);
  }
  channel.vehicle().send(MissionAck{MissionResult::kAccepted});
  auto ack = channel.gcs().receive();
  ASSERT_TRUE(ack.has_value());
  uploader.handle(std::move(*ack));
  EXPECT_TRUE(uploader.done());
}

TEST(MissionUploader, OutOfRangeRequestFails) {
  Channel channel;
  MissionUploader uploader(channel.gcs());
  uploader.start(std::vector<MissionItem>(2));
  channel.vehicle().receive();  // drop COUNT
  uploader.handle(MissionRequest{9});
  EXPECT_TRUE(uploader.failed());
}

TEST(MissionUploader, PassesThroughUnrelatedMessages) {
  Channel channel;
  MissionUploader uploader(channel.gcs());
  uploader.start(std::vector<MissionItem>(1));
  auto leftover = uploader.handle(Heartbeat{});
  ASSERT_TRUE(leftover.has_value());
  EXPECT_NE(std::get_if<Heartbeat>(&*leftover), nullptr);
}

}  // namespace
}  // namespace avis::mavlink
