// Write-ahead cell journal (core/journal.h).
//
// The journal's contract is narrow and strict: after SIGKILL at any instant
// the file holds every acknowledged cell plus at most one torn final line.
// These tests pin the pieces the crash-safety argument rests on:
//   - the header binds the campaign (grid identity hashes + report-affecting
//     config), and header_diff names every field that drifted;
//   - records round-trip losslessly (the resumed report is built from them);
//   - a torn FINAL line is dropped, not fatal — the cell simply re-runs;
//   - corruption anywhere else cannot be produced by a crash and is fatal;
//   - duplicate indices keep the first copy (determinism makes them equal).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.h"
#include "core/scenario.h"
#include "test_helpers.h"

namespace {

using namespace avis;

std::vector<core::CampaignCellSpec> small_grid(std::uint64_t seed = 100) {
  core::ScenarioGrid grid;
  grid.approaches = {"avis", "random"};
  grid.personalities = {"ardupilot"};
  grid.workloads = {"box-manual"};
  grid.environments = {"calm"};
  grid.budget_ms = 20000;
  grid.seed = seed;
  return core::expand_to_cells(grid);
}

// A report with enough non-default structure to catch lossy encoding; the
// full CheckerReport round trip (unsafe records, coverage, transitions) is
// pinned by checker_report_json's own tests.
core::CheckerReport synthetic_report(int salt) {
  core::CheckerReport report;
  report.strategy_name = "Avis";
  report.experiments = 40 + salt;
  report.labels = 3 + salt;
  report.budget_used_ms = 20000;
  report.checkpoint_hits = 5;
  report.checkpoint_misses = 2;
  report.checkpoint_hits_by_level = {4, 1};
  report.checkpoint_skipped_ms = 1234;
  report.stalled_runs = salt % 2;
  return report;
}

core::JournalCellRecord record_for(const std::vector<core::CampaignCellSpec>& grid,
                                   int index, int salt) {
  core::JournalCellRecord record;
  record.index = index;
  record.spec_hash = core::cell_identity_hash(grid[static_cast<std::size_t>(index)]);
  record.attempts = 1 + salt % 2;
  record.completed_by = salt % 2 ? "worker-a" : "local";
  if (salt % 2) record.reassigned_from = {"worker-b"};
  record.wall_seconds = 1.5 + salt;
  record.report = synthetic_report(salt);
  return record;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "avis_journal_" + name + "_" +
         std::to_string(::getpid()) + ".jsonl";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TEST(Journal, CellIdentityHashIsStableAndSpecSensitive) {
  const auto grid = small_grid();
  const std::string hash = core::cell_identity_hash(grid[0]);
  EXPECT_EQ(hash.size(), 16u);  // 64 bits as hex
  EXPECT_EQ(hash, core::cell_identity_hash(grid[0]));   // deterministic
  EXPECT_NE(hash, core::cell_identity_hash(grid[1]));   // approach differs

  // Any report-affecting knob changes the hash: a journal can never resume
  // a cell whose spec drifted.
  EXPECT_NE(core::cell_identity_hash(small_grid(100)[0]),
            core::cell_identity_hash(small_grid(101)[0]));
}

TEST(Journal, RoundTripsHeaderAndRecords) {
  const auto grid = small_grid();
  core::CheckpointConfig checkpoints;
  checkpoints.interval_ms = 2500;
  const auto header = core::CampaignJournal::bind(grid, checkpoints, 4);

  const std::string path = temp_path("roundtrip");
  {
    core::CampaignJournal journal = core::CampaignJournal::start(path, header);
    journal.append(record_for(grid, 0, 0));
    journal.append(record_for(grid, 1, 1));
  }

  const auto loaded = core::CampaignJournal::load(path);
  EXPECT_FALSE(loaded.dropped_torn_record);
  EXPECT_EQ(loaded.header.version, core::CampaignJournal::kVersion);
  EXPECT_EQ(loaded.header.cells, grid.size());
  EXPECT_TRUE(loaded.header.checkpoints_enabled);
  EXPECT_TRUE(loaded.header.checkpoint_trees);
  EXPECT_EQ(loaded.header.checkpoint_interval_ms, 2500);
  EXPECT_EQ(loaded.header.checkpoint_budget_bytes, checkpoints.byte_budget);
  EXPECT_EQ(loaded.header.batch_width, 4);
  ASSERT_EQ(loaded.header.cell_hashes.size(), grid.size());
  EXPECT_EQ(loaded.header.cell_hashes[0], core::cell_identity_hash(grid[0]));

  ASSERT_EQ(loaded.cells.size(), 2u);
  const core::JournalCellRecord& second = loaded.cells[1];
  EXPECT_EQ(second.index, 1);
  EXPECT_EQ(second.spec_hash, core::cell_identity_hash(grid[1]));
  EXPECT_EQ(second.attempts, 2);
  EXPECT_EQ(second.completed_by, "worker-a");
  ASSERT_EQ(second.reassigned_from.size(), 1u);
  EXPECT_EQ(second.reassigned_from[0], "worker-b");
  EXPECT_DOUBLE_EQ(second.wall_seconds, 2.5);
  avis::testing::expect_reports_equal(synthetic_report(1), second.report);
  std::filesystem::remove(path);
}

TEST(Journal, HeaderDiffIsEmptyForTheSameCampaign) {
  const auto grid = small_grid();
  const auto header = core::CampaignJournal::bind(grid, {}, 0);
  EXPECT_EQ(core::CampaignJournal::header_diff(
                header, core::CampaignJournal::bind(small_grid(), {}, 0), grid),
            "");
}

TEST(Journal, HeaderDiffNamesEveryDriftedField) {
  const auto grid = small_grid();
  const auto header = core::CampaignJournal::bind(grid, {}, 0);

  core::CheckpointConfig no_checkpoints;
  no_checkpoints.enabled = false;
  const auto config_drift = core::CampaignJournal::bind(grid, no_checkpoints, 8);
  const std::string config_diff =
      core::CampaignJournal::header_diff(header, config_drift, grid);
  EXPECT_NE(config_diff.find("checkpoints_enabled"), std::string::npos) << config_diff;
  EXPECT_NE(config_diff.find("batch_width"), std::string::npos) << config_diff;

  // A different grid seed keeps the shape but changes every cell hash; the
  // diff names the cells (with their registry coordinates), not just "hash".
  const auto reseeded = small_grid(777);
  const auto grid_drift = core::CampaignJournal::bind(reseeded, {}, 0);
  const std::string grid_diff =
      core::CampaignJournal::header_diff(header, grid_drift, reseeded);
  EXPECT_NE(grid_diff.find("cell 0"), std::string::npos) << grid_diff;
  EXPECT_NE(grid_diff.find("ardupilot"), std::string::npos) << grid_diff;
}

TEST(Journal, TornFinalRecordIsDroppedNotFatal) {
  const auto grid = small_grid();
  const std::string path = temp_path("torn");
  {
    core::CampaignJournal journal =
        core::CampaignJournal::start(path, core::CampaignJournal::bind(grid, {}, 0));
    journal.append(record_for(grid, 0, 0));
    journal.append(record_for(grid, 1, 1));
  }

  // Cut into the final line: what SIGKILL between write() and completion
  // looks like. The surviving prefix must load; the torn cell re-runs.
  const std::string contents = read_file(path);
  write_file(path, contents.substr(0, contents.size() - 10));

  const auto loaded = core::CampaignJournal::load(path);
  EXPECT_TRUE(loaded.dropped_torn_record);
  ASSERT_EQ(loaded.cells.size(), 1u);
  EXPECT_EQ(loaded.cells[0].index, 0);
  std::filesystem::remove(path);
}

TEST(Journal, CorruptNonFinalRecordIsFatal) {
  const auto grid = small_grid();
  const std::string path = temp_path("corrupt");
  {
    core::CampaignJournal journal =
        core::CampaignJournal::start(path, core::CampaignJournal::bind(grid, {}, 0));
    journal.append(record_for(grid, 0, 0));
    journal.append(record_for(grid, 1, 1));
  }

  // Mangle the FIRST record while the second stays intact. A crash cannot
  // produce this shape (appends are ordered, fsync'd writes), so load must
  // refuse loudly rather than silently resume from half a journal.
  std::istringstream in(read_file(path));
  std::string header_line, first, second;
  std::getline(in, header_line);
  std::getline(in, first);
  std::getline(in, second);
  write_file(path, header_line + "\n" + first.substr(0, first.size() / 2) + "\n" +
                       second + "\n");
  EXPECT_THROW(core::CampaignJournal::load(path), core::JournalError);
  std::filesystem::remove(path);
}

TEST(Journal, RecordDisagreeingWithHeaderIsCorruption) {
  const auto grid = small_grid();
  const std::string path = temp_path("hash_mismatch");
  {
    core::CampaignJournal journal =
        core::CampaignJournal::start(path, core::CampaignJournal::bind(grid, {}, 0));
    // Wrong hash for index 0: the record claims a cell this campaign never
    // had. Followed by a valid record so the lie is not on the final line.
    core::JournalCellRecord lie = record_for(grid, 0, 0);
    lie.spec_hash = std::string(16, 'f');
    journal.append(lie);
    journal.append(record_for(grid, 1, 1));
  }
  EXPECT_THROW(core::CampaignJournal::load(path), core::JournalError);
  std::filesystem::remove(path);
}

TEST(Journal, DuplicateIndexKeepsFirstRecord) {
  const auto grid = small_grid();
  const std::string path = temp_path("duplicate");
  {
    core::CampaignJournal journal =
        core::CampaignJournal::start(path, core::CampaignJournal::bind(grid, {}, 0));
    journal.append(record_for(grid, 0, 0));
    // A crash between fsync and "cell done" can journal the same completion
    // twice after resume; determinism makes the copies equal, so keeping the
    // first is sound. Salt the second copy to prove which one wins.
    core::JournalCellRecord again = record_for(grid, 0, 0);
    again.report.experiments = 9999;
    journal.append(again);
  }
  const auto loaded = core::CampaignJournal::load(path);
  ASSERT_EQ(loaded.cells.size(), 1u);
  EXPECT_EQ(loaded.cells[0].report.experiments, synthetic_report(0).experiments);
  std::filesystem::remove(path);
}

TEST(Journal, LoadRejectsMissingAndHeaderlessFiles) {
  EXPECT_THROW(core::CampaignJournal::load(temp_path("never_written")),
               core::JournalError);

  const std::string path = temp_path("bad_header");
  write_file(path, "this is not a journal\n");
  EXPECT_THROW(core::CampaignJournal::load(path), core::JournalError);
  std::filesystem::remove(path);
}

}  // namespace
