#include <gtest/gtest.h>

#include <set>

#include "core/harness.h"
#include "core/sabre.h"

namespace avis::core {
namespace {

std::vector<ModeTransition> toy_transitions() {
  return {{3540, 0x0400, "takeoff"}, {13000, 0x0501, "auto-wp1"}, {34000, 0x0900, "land"}};
}

ExperimentResult ok_result() {
  ExperimentResult r;
  r.workload_passed = true;
  return r;
}

ExperimentResult unsafe_result() {
  ExperimentResult r;
  r.violation = Violation{ViolationType::kCrash, 5000, 0x0400, "boom"};
  return r;
}

class SabreTest : public ::testing::Test {
 protected:
  sensors::SuiteConfig suite_ = SimulationHarness::iris_suite();
  BudgetClock budget_{3600 * 1000 * 4LL};
};

TEST_F(SabreTest, FirstBatchIsSingletonsAtFirstTransition) {
  SabreScheduler sabre(suite_, toy_transitions());
  // Canonical singletons for the Iris suite: gyro P/B, accel P/B, baro,
  // gps, compass P/B, battery = 9.
  std::set<std::string> sigs;
  for (int i = 0; i < 9; ++i) {
    auto plan = sabre.next(budget_);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->size(), 1u);
    EXPECT_EQ(plan->events[0].time_ms, 3540);
    sigs.insert(plan->signature());
    sabre.feedback(*plan, ok_result());
  }
  EXPECT_EQ(sigs.size(), 9u);
}

TEST_F(SabreTest, CoversAllTransitionsBeforeDeepOffsets) {
  SabreScheduler sabre(suite_, toy_transitions());
  std::set<sim::SimTimeMs> times_in_first_cycle;
  for (int i = 0; i < 27; ++i) {  // 3 transitions x 9 singletons
    auto plan = sabre.next(budget_);
    ASSERT_TRUE(plan.has_value());
    times_in_first_cycle.insert(plan->events[0].time_ms);
    sabre.feedback(*plan, ExperimentResult{});  // no transitions: no frontier
  }
  EXPECT_TRUE(times_in_first_cycle.contains(3540));
  EXPECT_TRUE(times_in_first_cycle.contains(13000));
  EXPECT_TRUE(times_in_first_cycle.contains(34000));
}

TEST_F(SabreTest, CrawlsBothDirections) {
  SabreConfig config;
  config.offset_step_ms = 200;
  SabreScheduler sabre(suite_, {{13000, 0x0501, "auto-wp1"}}, config);
  std::set<sim::SimTimeMs> times;
  for (int i = 0; i < 120; ++i) {
    auto plan = sabre.next(budget_);
    if (!plan) break;
    times.insert(plan->events.back().time_ms);
    sabre.feedback(*plan, ExperimentResult{});
  }
  EXPECT_TRUE(times.contains(13200));
  EXPECT_TRUE(times.contains(12800));
}

TEST_F(SabreTest, InstanceSymmetryPrunesBackupTwins) {
  SabreScheduler sabre(suite_, toy_transitions());
  // Collect every singleton proposed at the first transition; compass
  // backups #1 and #2 must collapse to one scenario.
  int compass_backups = 0;
  for (int i = 0; i < 9; ++i) {
    auto plan = sabre.next(budget_);
    ASSERT_TRUE(plan.has_value());
    const auto& e = plan->events[0];
    if (e.sensor.type == sensors::SensorType::kCompass && e.sensor.instance > 0) {
      ++compass_backups;
    }
    sabre.feedback(*plan, ExperimentResult{});
  }
  EXPECT_EQ(compass_backups, 1);
}

TEST_F(SabreTest, NoSymmetryExploresEveryInstance) {
  SabreConfig config;
  config.symmetry_pruning = false;
  SabreScheduler sabre(suite_, {{3540, 0x0400, "takeoff"}}, config);
  int first_batch_singletons = 0;
  for (int i = 0; i < 10; ++i) {
    auto plan = sabre.next(budget_);
    if (!plan || plan->events[0].time_ms != 3540 || plan->size() != 1) break;
    ++first_batch_singletons;
    sabre.feedback(*plan, ExperimentResult{});
  }
  EXPECT_EQ(first_batch_singletons, 10);  // all 10 concrete instances
}

TEST_F(SabreTest, FoundBugPruningBlocksSupersetsAtSameTimestamp) {
  SabreConfig config;
  config.full_powerset_batches = true;  // pairs come right after singletons
  config.max_offsets = 0;
  SabreScheduler sabre(suite_, {{5000, 0x0400, "takeoff"}}, config);
  // Fail every GPS-containing plan; afterwards no superset of {GPS}@5000
  // may be proposed.
  std::vector<FaultPlan> proposed;
  while (auto plan = sabre.next(budget_)) {
    proposed.push_back(*plan);
    const bool has_gps =
        std::any_of(plan->events.begin(), plan->events.end(), [](const FaultEvent& e) {
          return e.sensor.type == sensors::SensorType::kGps;
        });
    const bool gps_alone = has_gps && plan->size() == 1;
    sabre.feedback(*plan, gps_alone ? unsafe_result() : ok_result());
  }
  int gps_supersets = 0;
  for (const auto& plan : proposed) {
    const bool has_gps =
        std::any_of(plan.events.begin(), plan.events.end(), [](const FaultEvent& e) {
          return e.sensor.type == sensors::SensorType::kGps;
        });
    if (has_gps && plan.size() > 1) ++gps_supersets;
  }
  EXPECT_EQ(gps_supersets, 0);
  EXPECT_GT(sabre.pruned_by_found_bug(), 0);
}

TEST_F(SabreTest, FoundBugPruningDisabledExploresSupersets) {
  SabreConfig config;
  config.full_powerset_batches = true;
  config.found_bug_pruning = false;
  config.max_offsets = 0;
  SabreScheduler sabre(suite_, {{5000, 0x0400, "takeoff"}}, config);
  int gps_supersets = 0;
  while (auto plan = sabre.next(budget_)) {
    const bool has_gps =
        std::any_of(plan->events.begin(), plan->events.end(), [](const FaultEvent& e) {
          return e.sensor.type == sensors::SensorType::kGps;
        });
    if (has_gps && plan->size() > 1) ++gps_supersets;
    const bool gps_alone = has_gps && plan->size() == 1;
    sabre.feedback(*plan, gps_alone ? unsafe_result() : ok_result());
  }
  EXPECT_GT(gps_supersets, 0);
}

TEST_F(SabreTest, OkRunsSpawnAugmentedPlans) {
  SabreScheduler sabre(suite_, {{3540, 0x0400, "takeoff"}});
  auto first = sabre.next(budget_);
  ASSERT_TRUE(first.has_value());
  // The run was clean and discovered a later transition at t=20000.
  ExperimentResult result;
  result.workload_passed = true;
  result.transitions = {{0, 0, "preflight"}, {20000, 0x0900, "land"}};
  sabre.feedback(*first, result);
  // Eventually a plan with the original fault plus a new one at 20000 must
  // be proposed (the PX4-13291 discovery pattern).
  bool found_augmented = false;
  for (int i = 0; i < 600 && !found_augmented; ++i) {
    auto plan = sabre.next(budget_);
    if (!plan) break;
    if (plan->size() == 2 && plan->events[0].time_ms == first->events[0].time_ms &&
        plan->events[1].time_ms == 20000) {
      found_augmented = true;
    }
    sabre.feedback(*plan, ExperimentResult{});
  }
  EXPECT_TRUE(found_augmented);
}

TEST_F(SabreTest, AugmentedFrontierOutranksInitialFrontier) {
  // Regression for the buried augmented frontier: entries contributed by a
  // bug-free run's post-injection transitions must be serviced with queue-
  // front priority (rate-limited by augmented_interleave), not appended
  // behind the seeded transitions and their crawl refinements. The paper's
  // multi-fault chains (PX4-13291's GPS-then-battery) hinge on this.
  SabreScheduler sabre(suite_, toy_transitions());
  auto first = sabre.next(budget_);
  ASSERT_TRUE(first.has_value());
  // The first run is clean and observed transitions at 20000 and 25000,
  // both after the injection.
  ExperimentResult clean;
  clean.workload_passed = true;
  clean.transitions = {{0, 0, "preflight"}, {20000, 0x0900, "land"}, {25000, 0, "preflight"}};
  sabre.feedback(*first, clean);

  int chain_index = -1;        // first two-fault chain through t=20000
  int second_chain_index = -1; // companion entry at t=25000 (order preserved)
  int last_transition_index = -1;  // first singleton at the last seed (34000)
  for (int i = 1; i < 100; ++i) {
    auto plan = sabre.next(budget_);
    ASSERT_TRUE(plan.has_value());
    if (plan->size() == 2 && plan->events[0] == first->events[0]) {
      if (chain_index < 0 && plan->events[1].time_ms == 20000) chain_index = i;
      if (second_chain_index < 0 && plan->events[1].time_ms == 25000) second_chain_index = i;
    }
    if (last_transition_index < 0 && plan->size() == 1 && plan->events[0].time_ms == 34000) {
      last_transition_index = i;
    }
    sabre.feedback(*plan, ExperimentResult{});
  }
  // The chain surfaces within the first expansion waves — tens of
  // simulations — rather than after the initial frontier (seeds + crawls)
  // drains. Before the fix it appeared only behind the crawl refinements.
  ASSERT_GT(chain_index, 0);
  EXPECT_LE(chain_index, 30);
  ASSERT_GT(second_chain_index, 0);
  // The <=2 enqueued transitions keep their relative order.
  EXPECT_LT(chain_index, second_chain_index);
  // ...and the chain outranks the last seeded transition's own wave.
  ASSERT_GT(last_transition_index, 0);
  EXPECT_LT(chain_index, last_transition_index);
}

TEST(SabreSignatures, SubsetComparisonIsTokenExact) {
  // "1:P2" is a raw substring of "11:P2" — the old substring scan counted
  // that as a subset and pruned scenarios that share no failure set.
  EXPECT_FALSE(role_signature_subset("1:P2;", "11:P2;"));
  EXPECT_FALSE(role_signature_subset("1:P1;", "21:P1;"));
  // Real subsets and equal sets still match.
  EXPECT_TRUE(role_signature_subset("1:P2;", "0:-1;1:P2;"));
  EXPECT_TRUE(role_signature_subset("1:P2;", "1:P2;"));
  EXPECT_TRUE(role_signature_subset("", "1:P2;"));
  // Supersets are not subsets.
  EXPECT_FALSE(role_signature_subset("0:-1;1:P2;", "1:P2;"));
  // Tokenization drops empty segments and is delimiter-aware.
  const auto tokens = signature_tokens("0:-1;1:P2;");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "0:-1");
  EXPECT_EQ(tokens[1], "1:P2");
}

TEST_F(SabreTest, NeverProposesDuplicateScenario) {
  SabreScheduler sabre(suite_, toy_transitions());
  std::set<std::string> seen;
  for (int i = 0; i < 300; ++i) {
    auto plan = sabre.next(budget_);
    if (!plan) break;
    EXPECT_TRUE(seen.insert(plan->signature()).second)
        << "duplicate scenario: " << plan->to_string();
    sabre.feedback(*plan, ExperimentResult{});
  }
}

TEST_F(SabreTest, RespectsBudgetExhaustion) {
  SabreScheduler sabre(suite_, toy_transitions());
  BudgetClock tiny(1);
  tiny.charge_experiment(2);
  EXPECT_FALSE(sabre.next(tiny).has_value());
}

TEST_F(SabreTest, Fig5WalkthroughOrder) {
  // Two sensors, transitions at t1, t2, t4: the paper's Algorithm 1 example.
  sensors::SuiteConfig two;
  two.gyroscopes = 0;
  two.accelerometers = 0;
  two.barometers = 1;
  two.gpses = 1;
  two.compasses = 0;
  two.batteries = 0;
  SabreConfig config;
  config.full_powerset_batches = true;
  config.offset_step_ms = 1;
  config.max_offsets = 1;
  SabreScheduler sabre(two, {{1, 1, "takeoff"}, {2, 2, "auto"}, {4, 3, "land"}}, config);
  // First three plans: the full power set at t1 (GPS, Baro, GPS+Baro).
  std::vector<FaultPlan> plans;
  for (int i = 0; i < 9; ++i) {
    auto plan = sabre.next(budget_);
    ASSERT_TRUE(plan.has_value());
    plans.push_back(*plan);
    sabre.feedback(*plan, ExperimentResult{});
  }
  EXPECT_EQ(plans[0].events[0].time_ms, 1);
  EXPECT_EQ(plans[1].events[0].time_ms, 1);
  EXPECT_EQ(plans[2].events[0].time_ms, 1);
  EXPECT_EQ(plans[2].size(), 2u);  // {GPS, Baro} at t1
  // Then t2, then t4 — before any timestamp+1 refinement.
  EXPECT_EQ(plans[3].events[0].time_ms, 2);
  EXPECT_EQ(plans[6].events[0].time_ms, 4);
}

}  // namespace
}  // namespace avis::core
