#include <gtest/gtest.h>

#include "core/scenario.h"
#include "test_helpers.h"
#include "workload/default_workloads.h"
#include "workload/registry.h"
#include "workload/workload.h"

namespace avis::workload {
namespace {

// A minimal scripted workload for framework unit tests.
class ScriptProbe final : public Workload {
 public:
  ScriptProbe() : Workload("probe") {
    script_.wait_time(100);
    script_.add("arm-now", [this](GcsContext& ctx) { ctx.arm(); entered_arm = true; },
                [this](GcsContext&) { return finish_arm; }, 500);
  }
  bool entered_arm = false;
  bool finish_arm = false;
};

class WorkloadFrameworkTest : public ::testing::Test {
 protected:
  mavlink::Channel channel_;
  GcsContext ctx_{channel_.gcs(), geo::LocalFrame(geo::GeoPoint{40.0, -83.0, 200.0})};
};

TEST_F(WorkloadFrameworkTest, StepsAdvanceInOrder) {
  ScriptProbe probe;
  ctx_.pump(0);
  EXPECT_EQ(probe.step(ctx_), WorkloadStatus::kRunning);
  EXPECT_FALSE(probe.entered_arm);  // still in wait_time
  ctx_.pump(150);
  EXPECT_EQ(probe.step(ctx_), WorkloadStatus::kRunning);
  EXPECT_TRUE(probe.entered_arm);  // entered second step
  probe.finish_arm = true;
  ctx_.pump(200);
  EXPECT_EQ(probe.step(ctx_), WorkloadStatus::kPassed);
}

TEST_F(WorkloadFrameworkTest, StepTimeoutFailsWorkload) {
  ScriptProbe probe;
  for (sim::SimTimeMs t = 0; t <= 1000; t += 50) {
    ctx_.pump(t);
    probe.step(ctx_);
  }
  EXPECT_EQ(probe.status(), WorkloadStatus::kFailed);
  EXPECT_EQ(probe.failed_step(), "arm-now");
}

TEST_F(WorkloadFrameworkTest, ArmCommandReachesChannel) {
  ScriptProbe probe;
  ctx_.pump(0);
  probe.step(ctx_);  // starts the wait_time clock
  ctx_.pump(150);
  probe.step(ctx_);
  // The arm command must be on the wire to the vehicle.
  auto msg = channel_.vehicle().receive();
  ASSERT_TRUE(msg.has_value());
  const auto* cmd = std::get_if<mavlink::CommandLong>(&*msg);
  ASSERT_NE(cmd, nullptr);
  EXPECT_EQ(cmd->command, mavlink::Command::kComponentArmDisarm);
  EXPECT_DOUBLE_EQ(cmd->param1, 1.0);
}

TEST_F(WorkloadFrameworkTest, TelemetryUpdatesContext) {
  mavlink::GlobalPositionInt gp;
  gp.position = ctx_.frame().to_geodetic({5.0, 6.0, -20.0});
  gp.relative_alt_m = 20.0;
  channel_.vehicle().send(gp);
  mavlink::Heartbeat hb;
  hb.armed = true;
  hb.custom_mode = fw::composite_mode_id(fw::Mode::kTakeoff);
  channel_.vehicle().send(hb);
  ctx_.pump(1000);
  EXPECT_TRUE(ctx_.armed());
  EXPECT_EQ(ctx_.mode_id(), fw::composite_mode_id(fw::Mode::kTakeoff));
  EXPECT_NEAR(ctx_.altitude(), 20.0, 1e-9);
  EXPECT_NEAR(ctx_.local_position().x, 5.0, 1e-6);
}

TEST(WorkloadFactory, MakesAllThree) {
  EXPECT_NE(make_workload(WorkloadId::kAuto), nullptr);
  EXPECT_NE(make_workload(WorkloadId::kBoxManual), nullptr);
  EXPECT_NE(make_workload(WorkloadId::kFenceMission), nullptr);
  EXPECT_EQ(make_workload(WorkloadId::kAuto)->name(), "auto");
}

TEST(WorkloadRegistry, EveryEntryBuildsItsNamesake) {
  for (const auto& entry : workload_registry().entries()) {
    auto workload = entry.factory();
    ASSERT_NE(workload, nullptr) << entry.name;
    EXPECT_EQ(workload->name(), entry.name);
    EXPECT_FALSE(entry.description.empty()) << entry.name;
  }
  // The enum factory and the registry agree on the paper workloads.
  EXPECT_EQ(make_workload("box-manual")->name(), make_workload(WorkloadId::kBoxManual)->name());
  EXPECT_THROW(make_workload("box"), util::UnknownNameError);
}

// The failure path (paper §V-A's deadlock hazard): a step whose `done`
// predicate never holds must hit its timeout_ms, fail the workload, and
// terminate the harness run cleanly — well before the experiment's
// max_duration backstop.
class NeverCompletesWorkload final : public Workload {
 public:
  NeverCompletesWorkload() : Workload("never-completes") {
    script_.wait_time(500);
    script_.add("unreachable", [](GcsContext& ctx) { ctx.arm(); },
                [](GcsContext&) { return false; }, /*timeout_ms=*/2000);
    script_.wait_disarm();
  }
};

TEST(WorkloadFailurePath, StepTimeoutFailsTheWorkloadAndEndsTheRun) {
  core::SimulationHarness harness;
  core::ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload_factory = [] {
    return std::unique_ptr<Workload>(std::make_unique<NeverCompletesWorkload>());
  };
  spec.max_duration_ms = 60000;
  const core::ExperimentResult result = harness.run(spec);

  EXPECT_FALSE(result.workload_passed);
  // wait_time (500 ms) + timeout (2000 ms) + the harness's settle grace —
  // the run ends in seconds, it does not hang to the 60 s backstop.
  EXPECT_LT(result.duration_ms, 10000);
  EXPECT_GT(result.duration_ms, 2500);
  EXPECT_EQ(result.crash_cause, sim::CrashCause::kNone);
}

TEST(WorkloadFailurePath, FailedStepIsNamed) {
  mavlink::Channel channel;
  GcsContext ctx(channel.gcs(), geo::LocalFrame(geo::GeoPoint{40.0, -83.0, 200.0}));
  NeverCompletesWorkload workload;
  WorkloadStatus status = WorkloadStatus::kRunning;
  for (sim::SimTimeMs t = 0; t <= 4000 && status == WorkloadStatus::kRunning; t += 20) {
    ctx.pump(t);
    status = workload.step(ctx);
  }
  EXPECT_EQ(status, WorkloadStatus::kFailed);
  EXPECT_EQ(workload.failed_step(), "unreachable");
}

// Integration: every default workload completes on both personalities —
// the paper's portability claim for the framework (§IV-A).
struct GoldenCase {
  fw::Personality personality;
  WorkloadId workload;
};

class GoldenMatrix : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenMatrix, CompletesWithoutFaults) {
  const GoldenCase param = GetParam();
  const auto result = avis::testing::run_plan(param.personality, param.workload,
                                              core::FaultPlan{},
                                              fw::BugRegistry::current_code_base());
  EXPECT_TRUE(result.workload_passed);
  EXPECT_EQ(result.crash_cause, sim::CrashCause::kNone);
  EXPECT_TRUE(result.fired_bugs.empty());
  // Every run must report its mode trace through hinj.
  EXPECT_GE(result.transitions.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsBothFirmware, GoldenMatrix,
    ::testing::Values(GoldenCase{fw::Personality::kArduPilotLike, WorkloadId::kAuto},
                      GoldenCase{fw::Personality::kArduPilotLike, WorkloadId::kBoxManual},
                      GoldenCase{fw::Personality::kArduPilotLike, WorkloadId::kFenceMission},
                      GoldenCase{fw::Personality::kPx4Like, WorkloadId::kAuto},
                      GoldenCase{fw::Personality::kPx4Like, WorkloadId::kBoxManual},
                      GoldenCase{fw::Personality::kPx4Like, WorkloadId::kFenceMission}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = std::string(fw::to_string(info.param.personality)) + "_" +
                         to_string(info.param.workload);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// The new registry workloads complete golden on both personalities, in the
// environment presets they are meant to pair with — the precondition for
// profiling (and therefore for any campaign cell naming them).
struct ScenarioGoldenCase {
  const char* personality;
  const char* workload;
  const char* environment;
};

class ScenarioGoldenMatrix : public ::testing::TestWithParam<ScenarioGoldenCase> {};

TEST_P(ScenarioGoldenMatrix, CompletesWithoutFaults) {
  const ScenarioGoldenCase param = GetParam();
  core::ScenarioSpec scenario;
  scenario.personality = param.personality;
  scenario.workload = param.workload;
  scenario.environment = param.environment;
  core::ExperimentSpec spec = core::scenario_prototype(scenario);
  core::SimulationHarness harness;
  const auto result = harness.run(spec);
  EXPECT_TRUE(result.workload_passed);
  EXPECT_EQ(result.crash_cause, sim::CrashCause::kNone);
  EXPECT_TRUE(result.fired_bugs.empty());
  EXPECT_GE(result.transitions.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(
    NewWorkloadsBothFirmware, ScenarioGoldenMatrix,
    ::testing::Values(ScenarioGoldenCase{"ardupilot", "wind-gust-box", "gusty"},
                      ScenarioGoldenCase{"px4", "wind-gust-box", "gusty"},
                      ScenarioGoldenCase{"ardupilot", "survey", "calm"},
                      ScenarioGoldenCase{"px4", "survey", "breeze"}),
    [](const ::testing::TestParamInfo<ScenarioGoldenCase>& info) {
      std::string name = std::string(info.param.personality) + "_" + info.param.workload +
                         "_" + info.param.environment;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(GoldenRuns, FenceWorkloadTriggersFenceRtl) {
  const auto result =
      avis::testing::run_plan(fw::Personality::kArduPilotLike, WorkloadId::kFenceMission,
                              core::FaultPlan{}, fw::BugRegistry::current_code_base());
  ASSERT_TRUE(result.workload_passed);
  bool saw_wp3 = false;
  bool saw_rtl_after_wp3 = false;
  for (const auto& t : result.transitions) {
    if (t.mode_name == "auto-wp3") saw_wp3 = true;
    if (saw_wp3 && t.mode_name == "rtl") saw_rtl_after_wp3 = true;
  }
  EXPECT_TRUE(saw_wp3);
  EXPECT_TRUE(saw_rtl_after_wp3) << "fence breach must deflect waypoint 3 into RTL";
}

TEST(GoldenRuns, BoxWorkloadVisitsPositionHold) {
  const auto result =
      avis::testing::run_plan(fw::Personality::kArduPilotLike, WorkloadId::kBoxManual,
                              core::FaultPlan{}, fw::BugRegistry::current_code_base());
  ASSERT_TRUE(result.workload_passed);
  bool saw_poshold = false;
  for (const auto& t : result.transitions) {
    if (t.mode_name == "position-hold") saw_poshold = true;
  }
  EXPECT_TRUE(saw_poshold);
}

}  // namespace
}  // namespace avis::workload
