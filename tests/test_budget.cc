#include <gtest/gtest.h>

#include "core/budget.h"

namespace avis::core {
namespace {

TEST(BudgetClock, TwoHoursIsPaperBudget) {
  const BudgetClock budget = BudgetClock::two_hours();
  EXPECT_EQ(budget.total_ms(), 7200 * 1000);
  EXPECT_FALSE(budget.exhausted());
}

TEST(BudgetClock, ChargesExperiments) {
  BudgetClock budget(100 * 1000);
  budget.charge_experiment(60 * 1000);
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.remaining_ms(), 40 * 1000);
  EXPECT_EQ(budget.experiments(), 1);
  budget.charge_experiment(50 * 1000);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.remaining_ms(), 0);
}

TEST(BudgetClock, LabelCostMatchesPaper) {
  // "BFI's model took ~10 seconds to label an injection scenario."
  BudgetClock budget(100 * 1000);
  for (int i = 0; i < 7; ++i) budget.charge_label();
  EXPECT_EQ(budget.labels(), 7);
  EXPECT_EQ(budget.used_ms(), 7 * BudgetClock::kLabelCostMs);
  EXPECT_EQ(budget.remaining_ms(), 30 * 1000);
}

TEST(BudgetClock, LabelingAloneExhaustsBudget) {
  // The paper's observation: 2 hours buys only 720 labels.
  BudgetClock budget = BudgetClock::two_hours();
  int labels = 0;
  while (!budget.exhausted()) {
    budget.charge_label();
    ++labels;
  }
  EXPECT_EQ(labels, 720);
}

}  // namespace
}  // namespace avis::core
