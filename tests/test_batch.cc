// Batched lockstep simulation: the SoA batch blocks must round-trip scalar
// snapshots bit-for-bit (pack then unpack is the identity, including RNG
// stream positions and latched failures), and core::BatchHarness must
// produce ExperimentResults bit-identical to SimulationHarness::run for the
// same specs — swept across the full registry surface (both personalities x
// all five workloads) under the RNG-heaviest environment (gusty) at batch
// widths 2, 4 and 8, with fault plans that diverge lanes at different times
// (including never).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/batch_harness.h"
#include "core/checkpoint.h"
#include "core/harness.h"
#include "core/scenario.h"
#include "fw/cascade_batch.h"
#include "fw/estimator_batch.h"
#include "sensors/suite_batch.h"
#include "sim/quadcopter_batch.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace avis::core {
namespace {

using sensors::SensorId;
using sensors::SensorType;

// "Bit-for-bit" for doubles is stricter than operator== (which identifies
// +0.0 with -0.0 and can never match NaNs): compare the actual bit patterns.
void expect_bits(double a, double b, const char* what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

void expect_bits(const geo::Vec3& a, const geo::Vec3& b, const char* what) {
  expect_bits(a.x, b.x, what);
  expect_bits(a.y, b.y, what);
  expect_bits(a.z, b.z, what);
}

void expect_bits(const geo::Attitude& a, const geo::Attitude& b, const char* what) {
  expect_bits(a.roll, b.roll, what);
  expect_bits(a.pitch, b.pitch, what);
  expect_bits(a.yaw, b.yaw, what);
}

void expect_rng_equal(const util::Rng::State& a, const util::Rng::State& b, const char* what) {
  EXPECT_EQ(a.state, b.state) << what;
  EXPECT_EQ(a.has_spare, b.has_spare) << what;
  expect_bits(a.spare, b.spare, what);
}

// A mid-run world snapshot with genuinely randomized state: RNG streams
// mid-sequence (gusty wind draws every step; some with a cached Marsaglia
// spare), held sensor samples, a vehicle in flight. The store is recorded
// once and shared by every block's round-trip test.
const CheckpointStore& midrun_store() {
  static const CheckpointStore store = [] {
    ScenarioSpec scenario;
    scenario.personality = "ardupilot";
    scenario.workload = "auto";
    scenario.environment = "gusty";
    ExperimentSpec spec = scenario_prototype(scenario);
    SimulationHarness harness;
    return harness.record_prefix(spec, nullptr, {}, nullptr);
  }();
  return store;
}

std::vector<const ExperimentSnapshot*> midrun_snapshots() {
  const CheckpointStore& store = midrun_store();
  std::vector<const ExperimentSnapshot*> snaps;
  const ExperimentSnapshot* early = store.best_for(5000);
  const ExperimentSnapshot* late = store.best_for(FaultPlan::kNever);
  if (early != nullptr) snaps.push_back(early);
  if (late != nullptr && late != early) snaps.push_back(late);
  return snaps;
}

TEST(BatchBlocks, QuadcopterRoundTripIsBitExact) {
  const auto snaps = midrun_snapshots();
  ASSERT_FALSE(snaps.empty());
  sim::QuadcopterBatch batch(static_cast<int>(snaps.size()) + 1);
  for (std::size_t i = 0; i < snaps.size(); ++i)
    batch.pack(static_cast<int>(i), snaps[i]->simulator);
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const sim::Simulator::Snapshot& in = snaps[i]->simulator;
    const sim::Simulator::Snapshot out = batch.unpack(static_cast<int>(i), in.time_ms);
    EXPECT_EQ(out.time_ms, in.time_ms);
    EXPECT_EQ(out.last_crash, in.last_crash);
    expect_rng_equal(out.rng, in.rng, "wind rng");
    expect_bits(out.state.position, in.state.position, "position");
    expect_bits(out.state.velocity, in.state.velocity, "velocity");
    expect_bits(out.state.acceleration, in.state.acceleration, "acceleration");
    expect_bits(out.state.attitude, in.state.attitude, "attitude");
    expect_bits(out.state.body_rates, in.state.body_rates, "body_rates");
    for (int m = 0; m < 4; ++m)
      expect_bits(out.state.motors.value[static_cast<std::size_t>(m)],
                  in.state.motors.value[static_cast<std::size_t>(m)], "motors");
    expect_bits(out.state.battery_voltage, in.state.battery_voltage, "battery_voltage");
    expect_bits(out.state.battery_remaining, in.state.battery_remaining, "battery_remaining");
    EXPECT_EQ(out.state.on_ground, in.state.on_ground);
    EXPECT_EQ(out.state.crashed, in.state.crashed);
  }
}

template <typename Sample, typename CompareFn>
void expect_instances_equal(const std::vector<sensors::InstanceState<Sample>>& a,
                            const std::vector<sensors::InstanceState<Sample>>& b,
                            const char* family, CompareFn&& compare_held) {
  ASSERT_EQ(a.size(), b.size()) << family;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(std::string(family) + " instance " + std::to_string(i));
    expect_rng_equal(a[i].rng, b[i].rng, "rng");
    EXPECT_EQ(a[i].has_sample, b[i].has_sample);
    EXPECT_EQ(a[i].last_sample_ms, b[i].last_sample_ms);
    EXPECT_EQ(a[i].failed, b[i].failed);
    compare_held(a[i].held, b[i].held);
  }
}

void expect_suites_equal(const sensors::SuiteSnapshot& in, const sensors::SuiteSnapshot& out) {
  expect_instances_equal(in.gyros, out.gyros, "gyro",
                         [](const sensors::GyroSample& x, const sensors::GyroSample& y) {
                           expect_bits(x.body_rates, y.body_rates, "held body_rates");
                         });
  expect_instances_equal(in.accels, out.accels, "accel",
                         [](const sensors::AccelSample& x, const sensors::AccelSample& y) {
                           expect_bits(x.specific_force, y.specific_force, "held force");
                         });
  expect_instances_equal(in.baros, out.baros, "baro",
                         [](const sensors::BaroSample& x, const sensors::BaroSample& y) {
                           expect_bits(x.pressure_altitude_m, y.pressure_altitude_m, "held alt");
                         });
  expect_instances_equal(
      in.gpses, out.gpses, "gps", [](const sensors::GpsSample& x, const sensors::GpsSample& y) {
        expect_bits(x.position.latitude_deg, y.position.latitude_deg, "held lat");
        expect_bits(x.position.longitude_deg, y.position.longitude_deg, "held lon");
        expect_bits(x.position.altitude_m, y.position.altitude_m, "held alt");
        expect_bits(x.velocity_ned, y.velocity_ned, "held vel");
        EXPECT_EQ(x.num_satellites, y.num_satellites);
        expect_bits(x.hdop, y.hdop, "held hdop");
        EXPECT_EQ(x.has_fix, y.has_fix);
      });
  expect_instances_equal(in.compasses, out.compasses, "compass",
                         [](const sensors::CompassSample& x, const sensors::CompassSample& y) {
                           expect_bits(x.heading_rad, y.heading_rad, "held heading");
                         });
  expect_instances_equal(in.batteries, out.batteries, "battery",
                         [](const sensors::BatterySample& x, const sensors::BatterySample& y) {
                           expect_bits(x.voltage, y.voltage, "held voltage");
                           expect_bits(x.remaining_fraction, y.remaining_fraction, "held frac");
                         });
}

TEST(BatchBlocks, SuiteRoundTripIsBitExactIncludingRngAndFailureLatches) {
  const auto snaps = midrun_snapshots();
  ASSERT_FALSE(snaps.empty());
  const sensors::SuiteConfig config = SimulationHarness::iris_suite();  // what the harness provisions

  for (const ExperimentSnapshot* snap : snaps) {
    sensors::SuiteSnapshot in = snap->suite;
    // Exercise the carried-but-never-stepped fields too: a latched failure
    // and an RNG stream holding a cached Marsaglia spare must both survive
    // the round trip.
    ASSERT_FALSE(in.compasses.empty());
    in.compasses[0].failed = true;
    util::Rng spareful(7);
    spareful.next_gaussian();  // odd draw count -> spare cached
    in.gyros[0].rng = spareful.save();
    ASSERT_TRUE(in.gyros[0].rng.has_spare);

    sensors::SuiteBatch batch(config, 3);
    batch.pack(1, in);  // middle lane: neighbors must stay untouched
    expect_suites_equal(in, batch.unpack(1));
  }
}

TEST(BatchBlocks, EstimatorRoundTripIsBitExact) {
  const auto snaps = midrun_snapshots();
  ASSERT_FALSE(snaps.empty());
  fw::EstimatorBatch batch(static_cast<int>(snaps.size()));
  for (std::size_t i = 0; i < snaps.size(); ++i)
    batch.pack(static_cast<int>(i), snaps[i]->firmware.estimator);
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const fw::StateEstimator::Snapshot& in = snaps[i]->firmware.estimator;
    const fw::StateEstimator::Snapshot out = batch.unpack(static_cast<int>(i));
    expect_bits(out.state.position, in.state.position, "position");
    expect_bits(out.state.velocity, in.state.velocity, "velocity");
    expect_bits(out.state.attitude, in.state.attitude, "attitude");
    expect_bits(out.state.body_rates, in.state.body_rates, "body_rates");
    expect_bits(out.state.battery_voltage, in.state.battery_voltage, "battery_voltage");
    expect_bits(out.state.battery_remaining, in.state.battery_remaining, "battery_remaining");
    // Pre-injection published == state; the unpack reconstructs it.
    expect_bits(out.published.position, in.published.position, "published position");
    expect_bits(out.published.velocity, in.published.velocity, "published velocity");
    expect_bits(out.published.attitude, in.published.attitude, "published attitude");
    expect_bits(out.prev_attitude, in.prev_attitude, "prev_attitude");
    expect_bits(out.last_gps_velocity, in.last_gps_velocity, "last_gps_velocity");
    expect_bits(out.last_gps_local, in.last_gps_local, "last_gps_local");
    EXPECT_EQ(out.have_gps_sample, in.have_gps_sample);
    EXPECT_EQ(out.have_gps_ever, in.have_gps_ever);
    EXPECT_EQ(out.dead_reckoning, in.dead_reckoning);
    EXPECT_EQ(out.frozen_alt_valid, in.frozen_alt_valid);
    expect_bits(out.frozen_alt_z, in.frozen_alt_z, "frozen_alt_z");
    for (std::size_t h = 0; h < in.health.size(); ++h) {
      EXPECT_EQ(out.health[h].total, in.health[h].total) << "health " << h;
      EXPECT_EQ(out.health[h].alive, in.health[h].alive) << "health " << h;
      EXPECT_EQ(out.health[h].primary_alive, in.health[h].primary_alive) << "health " << h;
      EXPECT_EQ(out.health[h].all_failed_at, in.health[h].all_failed_at) << "health " << h;
      EXPECT_EQ(out.health[h].primary_failed_at, in.health[h].primary_failed_at)
          << "health " << h;
    }
  }
}

TEST(BatchBlocks, CascadeRoundTripIsBitExact) {
  const auto snaps = midrun_snapshots();
  ASSERT_FALSE(snaps.empty());
  fw::CascadeBatch batch(static_cast<int>(snaps.size()));
  for (std::size_t i = 0; i < snaps.size(); ++i)
    batch.pack(static_cast<int>(i), snaps[i]->firmware.cascade);
  for (std::size_t i = 0; i < snaps.size(); ++i) {
    const fw::ControlCascade::Snapshot& in = snaps[i]->firmware.cascade;
    const fw::ControlCascade::Snapshot out = batch.unpack(static_cast<int>(i));
    expect_bits(out.rate_roll.integral, in.rate_roll.integral, "roll integral");
    expect_bits(out.rate_roll.last_error, in.rate_roll.last_error, "roll last_error");
    expect_bits(out.rate_pitch.integral, in.rate_pitch.integral, "pitch integral");
    expect_bits(out.rate_pitch.last_error, in.rate_pitch.last_error, "pitch last_error");
    expect_bits(out.rate_yaw.integral, in.rate_yaw.integral, "yaw integral");
    expect_bits(out.rate_yaw.last_error, in.rate_yaw.last_error, "yaw last_error");
    expect_bits(out.last_vel_error, in.last_vel_error, "last_vel_error");
  }
}

// Full-field equality of two experiment results (the same contract as
// tests/test_checkpoint.cc: "bit-identical" is the bar).
void expect_results_identical(const ExperimentResult& scalar, const ExperimentResult& batched,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(scalar.workload_passed, batched.workload_passed);
  EXPECT_EQ(scalar.duration_ms, batched.duration_ms);
  EXPECT_EQ(scalar.fired_bugs, batched.fired_bugs);
  EXPECT_EQ(scalar.crash_cause, batched.crash_cause);
  EXPECT_EQ(scalar.resumed_from_ms, batched.resumed_from_ms);
  ASSERT_EQ(scalar.violation.has_value(), batched.violation.has_value());
  if (scalar.violation) {
    EXPECT_EQ(scalar.violation->type, batched.violation->type);
    EXPECT_EQ(scalar.violation->time_ms, batched.violation->time_ms);
    EXPECT_EQ(scalar.violation->mode_id, batched.violation->mode_id);
    EXPECT_EQ(scalar.violation->details, batched.violation->details);
  }
  ASSERT_EQ(scalar.transitions.size(), batched.transitions.size());
  for (std::size_t i = 0; i < scalar.transitions.size(); ++i) {
    EXPECT_EQ(scalar.transitions[i].time_ms, batched.transitions[i].time_ms) << "t " << i;
    EXPECT_EQ(scalar.transitions[i].mode_id, batched.transitions[i].mode_id) << "t " << i;
    EXPECT_EQ(scalar.transitions[i].mode_name, batched.transitions[i].mode_name) << "t " << i;
  }
  ASSERT_EQ(scalar.trace.size(), batched.trace.size());
  for (std::size_t i = 0; i < scalar.trace.size(); ++i) {
    EXPECT_EQ(scalar.trace[i].time_ms, batched.trace[i].time_ms) << "i=" << i;
    EXPECT_EQ(scalar.trace[i].position, batched.trace[i].position) << "i=" << i;
    EXPECT_EQ(scalar.trace[i].acceleration, batched.trace[i].acceleration) << "i=" << i;
    EXPECT_EQ(scalar.trace[i].mode_id, batched.trace[i].mode_id) << "i=" << i;
    EXPECT_EQ(scalar.trace[i].on_ground, batched.trace[i].on_ground) << "i=" << i;
    EXPECT_EQ(scalar.trace[i].armed, batched.trace[i].armed) << "i=" << i;
  }
}

// The eight plans a parity combo runs: an empty plan (the lane never
// diverges — it retires inside the batch), a near-immediate injection
// (diverges on the first few iterations), and a spread of mid-run single
// and multi-event plans across sensor types, so one batch mixes lanes that
// leave at six different times with lanes that never leave.
std::vector<FaultPlan> parity_plans() {
  std::vector<FaultPlan> plans(8);
  plans[1].add(500, {SensorType::kCompass, 0});
  plans[2].add(12000, {SensorType::kCompass, 0});
  plans[3].add(18000, {SensorType::kGps, 0});
  plans[3].add(26000, {SensorType::kBarometer, 0});
  plans[4].add(30000, {SensorType::kCompass, 1});
  plans[5].add(8000, {SensorType::kGyroscope, 1});
  plans[6].add(22000, {SensorType::kAccelerometer, 0});
  plans[7].add(5000, {SensorType::kGps, 0});
  return plans;
}

// The headline contract: the batch path is report-identical to the scalar
// path across the registry surface — both personalities x all five
// workloads x gusty — at widths 2, 4 and 8. Scalar baselines are computed
// once per spec; each width's batch takes a prefix of the spec list, so
// every width mixes never-diverging, early-diverging and late-diverging
// lanes.
TEST(BatchParity, BatchedRunsAreBitIdenticalAcrossTheRegistrySurface) {
  SimulationHarness harness;
  ExperimentContext context;
  BatchHarness engine(harness);

  const std::vector<std::string> personalities = {"ardupilot", "px4"};
  const std::vector<std::string> workloads = {"auto", "box-manual", "fence-mission",
                                              "wind-gust-box", "survey"};
  const std::vector<FaultPlan> plans = parity_plans();

  for (const std::string& personality : personalities) {
    for (const std::string& workload : workloads) {
      const std::string label = personality + "/" + workload + "/gusty";
      SCOPED_TRACE(label);
      ScenarioSpec scenario;
      scenario.personality = personality;
      scenario.workload = workload;
      scenario.environment = "gusty";
      const ExperimentSpec prototype = scenario_prototype(scenario);

      std::vector<ExperimentSpec> specs(plans.size(), prototype);
      std::vector<ExperimentResult> scalar(plans.size());
      for (std::size_t i = 0; i < plans.size(); ++i) {
        specs[i].plan = plans[i];
        scalar[i] = harness.run(specs[i], nullptr, &context);
      }

      for (const std::size_t width : {2u, 4u, 8u}) {
        const std::vector<ExperimentSpec> slice(specs.begin(),
                                                specs.begin() + static_cast<std::ptrdiff_t>(width));
        const std::vector<ExperimentResult> batched = engine.run(slice);
        ASSERT_EQ(batched.size(), width);
        for (std::size_t i = 0; i < width; ++i) {
          expect_results_identical(scalar[i], batched[i],
                                   label + "/w" + std::to_string(width) + "/" +
                                       std::to_string(i));
        }
      }
    }
  }
}

// Monitored batch runs: violations (with stop-on-violation truncation) must
// fire at the same millisecond whether the lane diverged before the
// violation or the violation window was reached scalar-side after an early
// divergence. The compass fault in the APM-16967 window produces a real
// monitored violation.
TEST(BatchParity, MonitoredViolationsMatchScalarTiming) {
  auto& checker = avis::testing::cached_checker(fw::Personality::kArduPilotLike,
                                                workload::WorkloadId::kFenceMission);
  const MonitorModel& model = checker.model();
  SimulationHarness harness;
  ExperimentContext context;
  BatchHarness engine(harness);

  ExperimentSpec prototype;
  prototype.personality = fw::Personality::kArduPilotLike;
  prototype.workload = workload::WorkloadId::kFenceMission;
  prototype.seed = 100;
  prototype.max_duration_ms = model.profiling_duration_ms() + 45000;

  std::vector<ExperimentSpec> specs(3, prototype);
  specs[0].plan.add(avis::testing::transition_time(model, "auto-wp2"),
                    {SensorType::kCompass, 0});
  specs[1].plan.add(500, {SensorType::kCompass, 0});
  // specs[2]: empty plan (golden; the lane retires inside the batch).

  std::vector<ExperimentResult> scalar;
  for (const ExperimentSpec& spec : specs) scalar.push_back(harness.run(spec, &model, &context));
  ASSERT_TRUE(scalar[0].violation.has_value());

  const std::vector<ExperimentResult> batched = engine.run(specs, &model);
  ASSERT_EQ(batched.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_results_identical(scalar[i], batched[i], "monitored/" + std::to_string(i));
}

// Checkpointed batch runs: lanes resuming from different snapshots (and one
// from cold) land in different lockstep groups; each must match the scalar
// checkpoint-restored run exactly, including resumed_from_ms.
TEST(BatchParity, CheckpointResumedBatchesMatchScalarRestores) {
  SimulationHarness harness;
  ExperimentContext context;
  BatchHarness engine(harness);

  ScenarioSpec scenario;
  scenario.personality = "ardupilot";
  scenario.workload = "auto";
  scenario.environment = "gusty";
  const ExperimentSpec prototype = scenario_prototype(scenario);
  const CheckpointStore store = harness.record_prefix(prototype, nullptr, {}, &context);
  ASSERT_GT(store.size(), 1u);

  std::vector<ExperimentSpec> specs(4, prototype);
  specs[0].plan.add(12000, {SensorType::kCompass, 0});   // mid snapshot
  specs[1].plan.add(18000, {SensorType::kGps, 0});       // later snapshot
  specs[2].plan.add(500, {SensorType::kCompass, 0});     // before first snapshot: cold
  specs[3].plan.add(12500, {SensorType::kBarometer, 0}); // shares specs[0]'s snapshot

  std::vector<ExperimentResult> scalar;
  for (const ExperimentSpec& spec : specs)
    scalar.push_back(harness.run(spec, nullptr, &context, &store));
  EXPECT_GT(scalar[0].resumed_from_ms, 0);
  EXPECT_EQ(scalar[2].resumed_from_ms, 0);

  const std::vector<ExperimentResult> batched = engine.run(specs, nullptr, &store);
  ASSERT_EQ(batched.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    expect_results_identical(scalar[i], batched[i], "checkpointed/" + std::to_string(i));
}

// Width 1 is a degenerate batch, not a special case: a single-lane batch
// must still be report-identical (the --batch-width 1 contract).
TEST(BatchParity, WidthOneRoutesThroughTheBatchEngineIdentically) {
  SimulationHarness harness;
  ExperimentContext context;
  BatchHarness engine(harness);

  ScenarioSpec scenario;
  scenario.personality = "px4";
  scenario.workload = "survey";
  scenario.environment = "gusty";
  ExperimentSpec spec = scenario_prototype(scenario);
  spec.plan.add(15000, {SensorType::kGps, 0});

  const ExperimentResult scalar = harness.run(spec, nullptr, &context);
  const std::vector<ExperimentResult> batched = engine.run({spec});
  ASSERT_EQ(batched.size(), 1u);
  expect_results_identical(scalar, batched[0], "width-1");
}

}  // namespace
}  // namespace avis::core
