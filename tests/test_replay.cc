// Replay anchoring (paper §IV-D): faults are re-expressed relative to the
// k-th occurrence of the composite mode they were injected under, so a
// replay arms them when the anchor mode re-occurs — including when the same
// mode is entered more than once (e.g. preflight -> ... -> preflight).
#include <gtest/gtest.h>

#include "core/replay.h"

namespace avis::core {
namespace {

const sensors::SensorId kGps{sensors::SensorType::kGps, 0};
const sensors::SensorId kBaro{sensors::SensorType::kBarometer, 0};

std::vector<ModeTransition> repeated_mode_transitions() {
  // Mode 0x0400 occurs twice (entries at 1000 and 3000) with another mode
  // in between — the repeated-mode shape a boxed patrol mission produces.
  return {{1000, 0x0400, "hold"}, {2000, 0x0501, "auto"}, {3000, 0x0400, "hold"}};
}

TEST(ReplayRecord, AnchorsToSecondOccurrenceOfRepeatedMode) {
  ExperimentSpec spec;
  spec.plan.add(3500, kGps);  // inside the *second* hold interval
  const ReplayRecord record = make_replay_record(spec, repeated_mode_transitions());
  ASSERT_EQ(record.anchored.size(), 1u);
  EXPECT_EQ(record.anchored[0].anchor_mode_id, 0x0400);
  EXPECT_EQ(record.anchored[0].anchor_occurrence, 1);
  EXPECT_EQ(record.anchored[0].delta_ms, 500);
}

TEST(ReplayRecord, SingleForwardPassAnchorsEveryEvent) {
  // Events in both occurrences of the repeated mode plus the middle mode:
  // the single forward pass must attribute each to its own interval.
  ExperimentSpec spec;
  spec.plan.add(1500, kGps);
  spec.plan.add(2500, kBaro);
  spec.plan.add(3500, kBaro);
  const ReplayRecord record = make_replay_record(spec, repeated_mode_transitions());
  ASSERT_EQ(record.anchored.size(), 3u);

  EXPECT_EQ(record.anchored[0].anchor_mode_id, 0x0400);
  EXPECT_EQ(record.anchored[0].anchor_occurrence, 0);
  EXPECT_EQ(record.anchored[0].delta_ms, 500);

  EXPECT_EQ(record.anchored[1].anchor_mode_id, 0x0501);
  EXPECT_EQ(record.anchored[1].anchor_occurrence, 0);
  EXPECT_EQ(record.anchored[1].delta_ms, 500);

  EXPECT_EQ(record.anchored[2].anchor_mode_id, 0x0400);
  EXPECT_EQ(record.anchored[2].anchor_occurrence, 1);
  EXPECT_EQ(record.anchored[2].delta_ms, 500);
}

TEST(ReplayRecord, EventBeforeFirstTransitionKeepsAbsoluteTime) {
  ExperimentSpec spec;
  spec.plan.add(400, kGps);
  const ReplayRecord record = make_replay_record(spec, repeated_mode_transitions());
  ASSERT_EQ(record.anchored.size(), 1u);
  EXPECT_EQ(record.anchored[0].anchor_mode_id, 0);
  EXPECT_EQ(record.anchored[0].anchor_occurrence, 0);
  EXPECT_EQ(record.anchored[0].delta_ms, 400);
}

TEST(ReplayDirector, ArmsOnSecondOccurrenceOnly) {
  AnchoredFault fault;
  fault.anchor_mode_id = 0x0400;
  fault.anchor_occurrence = 1;
  fault.delta_ms = 500;
  fault.sensor = kGps;
  ReplayDirector director({fault});

  // First occurrence: must not arm.
  director.on_mode_update(0x0400, "hold", 1000);
  EXPECT_FALSE(director.should_fail(kGps, 1600));
  director.on_mode_update(0x0501, "auto", 2000);
  EXPECT_FALSE(director.should_fail(kGps, 2600));
  // Second occurrence at a shifted time (replay non-determinism): the fault
  // fires delta_ms after the re-occurrence.
  director.on_mode_update(0x0400, "hold", 3100);
  EXPECT_FALSE(director.should_fail(kGps, 3500));
  EXPECT_TRUE(director.should_fail(kGps, 3600));
  // Other sensors stay untouched.
  EXPECT_FALSE(director.should_fail(kBaro, 4000));
}

}  // namespace
}  // namespace avis::core
