// End-to-end checks of the full Avis loop: profiling, SABRE, the invariant
// monitor, and bug discovery, mirroring the paper's headline workflow.
#include <gtest/gtest.h>

#include "baselines/stratified_bfi.h"
#include "core/checker.h"
#include "core/sabre.h"
#include "test_helpers.h"

namespace avis {
namespace {

TEST(AvisEndToEnd, FindsSeededBugsOnArduPilotFence) {
  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                             checker.model().golden_transitions());
  core::BudgetClock budget = core::BudgetClock::two_hours();
  const auto report = checker.run(sabre, budget);

  EXPECT_GT(report.unsafe_count(), 5);
  // The fence workload exposes at least these four ArduPilot bugs.
  EXPECT_TRUE(report.found_bug(fw::BugId::kApm16020));
  EXPECT_TRUE(report.found_bug(fw::BugId::kApm16021));
  EXPECT_TRUE(report.found_bug(fw::BugId::kApm16027));
  EXPECT_TRUE(report.found_bug(fw::BugId::kApm16967));
  // Every unsafe condition traces to a seeded bug — no false positives —
  // except scenarios that kill an entire IMU family, which no firmware can
  // survive (documented substitution note in DESIGN.md / EXPERIMENTS.md).
  auto kills_imu_family = [](const core::FaultPlan& plan) {
    int gyros = 0;
    int accels = 0;
    for (const auto& e : plan.events) {
      if (e.sensor.type == sensors::SensorType::kGyroscope) ++gyros;
      if (e.sensor.type == sensors::SensorType::kAccelerometer) ++accels;
    }
    return gyros >= 2 || accels >= 2;
  };
  for (const auto& record : report.unsafe) {
    if (kills_imu_family(record.plan)) continue;
    EXPECT_FALSE(record.fired_bugs.empty())
        << "unattributed violation for " << record.plan.to_string() << ": "
        << record.violation.details;
  }
}

TEST(AvisEndToEnd, FindsSeededBugsOnPx4Fence) {
  core::Checker checker(fw::Personality::kPx4Like, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                             checker.model().golden_transitions());
  core::BudgetClock budget = core::BudgetClock::two_hours();
  const auto report = checker.run(sabre, budget);

  EXPECT_TRUE(report.found_bug(fw::BugId::kPx417057));
  EXPECT_TRUE(report.found_bug(fw::BugId::kPx417181));
  EXPECT_TRUE(report.found_bug(fw::BugId::kPx417192));
  EXPECT_TRUE(report.found_bug(fw::BugId::kPx417046));
}

TEST(AvisEndToEnd, StratifiedBfiMissesGatedWindows) {
  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  static baselines::NaiveBayesModel bayes(baselines::default_training_corpus());
  baselines::StratifiedBfi sbfi(core::SimulationHarness::iris_suite(),
                                checker.model().golden_transitions(), bayes);
  core::BudgetClock budget = core::BudgetClock::two_hours();
  const auto report = checker.run(sbfi, budget);

  // Table II: Stratified BFI finds the waypoint-window bugs...
  EXPECT_TRUE(report.found_bug(fw::BugId::kApm16967));
  // ...but not the GPS, barometer, or landing-phase ones.
  EXPECT_FALSE(report.found_bug(fw::BugId::kApm16020));
  EXPECT_FALSE(report.found_bug(fw::BugId::kApm16027));
  EXPECT_FALSE(report.found_bug(fw::BugId::kApm16682));
  EXPECT_FALSE(report.found_bug(fw::BugId::kApm16953));
}

TEST(AvisEndToEnd, TableVKnownBugReinsertedAndFound) {
  // Re-insert APM-4679 (the land-flap bug) and check Avis triggers it.
  fw::BugRegistry bugs = fw::BugRegistry::current_code_base();
  bugs.enable(fw::BugId::kApm4679);
  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        bugs);
  core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                             checker.model().golden_transitions());
  core::BudgetClock budget = core::BudgetClock::two_hours();
  const auto report = checker.run(sabre, budget);
  EXPECT_TRUE(report.found_bug(fw::BugId::kApm4679));
}

TEST(AvisEndToEnd, UnsafeRecordsCarryReplayableContext) {
  core::Checker checker(fw::Personality::kArduPilotLike, workload::WorkloadId::kFenceMission,
                        fw::BugRegistry::current_code_base());
  core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                             checker.model().golden_transitions());
  core::BudgetClock budget(30 * 60 * 1000);
  const auto report = checker.run(sabre, budget);
  ASSERT_GT(report.unsafe_count(), 0);
  for (const auto& record : report.unsafe) {
    EXPECT_FALSE(record.plan.empty());
    EXPECT_FALSE(record.transitions.empty());
    EXPECT_GT(record.seed, 0u);
    EXPECT_GT(record.experiment_index, 0);
  }
}

}  // namespace
}  // namespace avis
