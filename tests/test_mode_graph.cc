#include <gtest/gtest.h>

#include "core/mode_graph.h"

namespace avis::core {
namespace {

std::vector<ModeTransition> linear_run() {
  // preflight -> takeoff -> auto-wp1 -> auto-wp2 -> rtl -> land -> preflight
  return {{0, 0x0000, "preflight"}, {3540, 0x0400, "takeoff"}, {13000, 0x0501, "auto-wp1"},
          {17000, 0x0502, "auto-wp2"}, {25000, 0x0800, "rtl"}, {34000, 0x0900, "land"},
          {54000, 0x0000, "preflight"}};
}

TEST(ModeGraph, NodesAndEdgesFromTransitions) {
  const ModeGraph graph = ModeGraph::from_profiling({linear_run()});
  EXPECT_EQ(graph.node_count(), 6u);  // preflight counted once
  EXPECT_EQ(graph.edge_count(), 6u);  // including land -> preflight
  EXPECT_TRUE(graph.contains(0x0400));
  EXPECT_FALSE(graph.contains(0x0A00));
}

TEST(ModeGraph, ShortestPathDistances) {
  const ModeGraph graph = ModeGraph::from_profiling({linear_run()});
  EXPECT_EQ(graph.distance(0x0400, 0x0400), 0);
  EXPECT_EQ(graph.distance(0x0400, 0x0501), 1);
  EXPECT_EQ(graph.distance(0x0400, 0x0900), 4);
  // The cycle through land -> preflight makes reverse paths long but finite.
  EXPECT_EQ(graph.distance(0x0501, 0x0400), 5);
}

TEST(ModeGraph, DirectednessMatters) {
  // "a drone cannot land before it is flying": takeoff -> land is a path,
  // but land -> takeoff must go around the cycle.
  const ModeGraph graph = ModeGraph::from_profiling({linear_run()});
  // Forward along the mission is one hop; backwards must loop through
  // land -> preflight -> takeoff.
  EXPECT_LT(graph.distance(0x0501, 0x0502), graph.distance(0x0502, 0x0501));
}

TEST(ModeGraph, DiameterIsLongestShortestPath) {
  const ModeGraph graph = ModeGraph::from_profiling({linear_run()});
  // takeoff is 6 hops from itself around the cycle? No: diameter counts
  // distinct pairs; the longest is 5 (e.g. auto-wp1 -> takeoff).
  EXPECT_EQ(graph.diameter(), 5);
}

TEST(ModeGraph, UnknownModeScoresDiameter) {
  const ModeGraph graph = ModeGraph::from_profiling({linear_run()});
  EXPECT_EQ(graph.distance(0x0400, 0x0A00), graph.diameter());
  EXPECT_EQ(graph.distance(0x0A00, 0x0400), graph.diameter());
}

TEST(ModeGraph, MergesMultipleProfilingRuns) {
  auto run_a = linear_run();
  // A second run that skips the waypoints (e.g. a different workload).
  std::vector<ModeTransition> run_b{{0, 0x0000, "preflight"},
                                    {3000, 0x0400, "takeoff"},
                                    {12000, 0x0900, "land"},
                                    {30000, 0x0000, "preflight"}};
  const ModeGraph graph = ModeGraph::from_profiling({run_a, run_b});
  // The direct takeoff -> land edge from run B shortens the distance.
  EXPECT_EQ(graph.distance(0x0400, 0x0900), 1);
}

TEST(ModeGraph, SelfLoopIgnored) {
  std::vector<ModeTransition> run{{0, 0x0900, "land"}, {800, 0x0900, "land"},
                                  {1600, 0x0000, "preflight"}};
  const ModeGraph graph = ModeGraph::from_profiling({run});
  EXPECT_EQ(graph.node_count(), 2u);
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(ModeGraph, EmptyProfilingIsSafe) {
  const ModeGraph graph = ModeGraph::from_profiling({});
  EXPECT_EQ(graph.node_count(), 0u);
  EXPECT_GE(graph.diameter(), 1);
}

}  // namespace
}  // namespace avis::core
