// util::Registry: the string-keyed extension point every scenario axis
// (workload, approach, personality, environment, bug population) hangs off.
// The contract under test: registration order is listing order, duplicate
// names are rejected at registration, and a lookup miss produces one
// actionable diagnostic — nearest-name suggestion plus the registered-name
// listing — as an UnknownNameError.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "util/json.h"
#include "util/registry.h"

namespace {

using avis::util::Registry;
using avis::util::UnknownNameError;

using StringFactory = std::function<std::string()>;

Registry<StringFactory> make_test_registry() {
  Registry<StringFactory> r("widget");
  r.add("alpha", "first", [] { return std::string("A"); })
      .add("beta", "second", [] { return std::string("B"); })
      .add("gamma-long", "third", [] { return std::string("C"); });
  return r;
}

TEST(Registry, FindAtAndNamesPreserveRegistrationOrder) {
  const auto r = make_test_registry();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_TRUE(r.contains("beta"));
  EXPECT_FALSE(r.contains("delta"));
  ASSERT_NE(r.find("alpha"), nullptr);
  EXPECT_EQ(r.find("alpha")->description, "first");
  EXPECT_EQ(r.at("beta").factory(), "B");
  EXPECT_EQ(r.names(), (std::vector<std::string>{"alpha", "beta", "gamma-long"}));
}

TEST(Registry, DuplicateRegistrationThrows) {
  auto r = make_test_registry();
  EXPECT_THROW(r.add("beta", "again", [] { return std::string(); }), std::logic_error);
}

TEST(Registry, UnknownNameCarriesSuggestionAndListing) {
  const auto r = make_test_registry();
  try {
    r.at("betaa");
    FAIL() << "expected UnknownNameError";
  } catch (const UnknownNameError& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("unknown widget: 'betaa'"), std::string::npos) << what;
    EXPECT_NE(what.find("did you mean 'beta'?"), std::string::npos) << what;
    EXPECT_NE(what.find("registered widgets are: alpha, beta, gamma-long"), std::string::npos)
        << what;
  }
}

TEST(Registry, CustomPluralReachesTheDiagnostic) {
  Registry<int> r("personality", "personalities");
  r.add("ardupilot", "", 0);
  try {
    r.at("apm");
    FAIL() << "expected UnknownNameError";
  } catch (const UnknownNameError& err) {
    EXPECT_NE(std::string(err.what()).find("registered personalities are"), std::string::npos);
  }
}

TEST(Registry, EditDistance) {
  EXPECT_EQ(avis::util::edit_distance("", ""), 0u);
  EXPECT_EQ(avis::util::edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(avis::util::edit_distance("abc", "abd"), 1u);
  EXPECT_EQ(avis::util::edit_distance("abc", ""), 3u);
  EXPECT_EQ(avis::util::edit_distance("kitten", "sitting"), 3u);
}

TEST(Registry, ClosestNamePrefersUniquePrefixThenDistance) {
  const std::vector<std::string> names{"auto", "box-manual", "fence-mission", "wind-gust-box",
                                       "survey"};
  EXPECT_EQ(avis::util::closest_name("wind", names), "wind-gust-box");
  EXPECT_EQ(avis::util::closest_name("surveey", names), "survey");
  EXPECT_EQ(avis::util::closest_name("zzzzzz", names), "");
}

// --- util::Json, the other half of the scenario-file substrate ------------

TEST(Json, ParsesScalarsObjectsAndArrays) {
  const auto json = avis::util::Json::parse(
      R"({"name": "boxA", "count": 3, "big": 18446744073709551615,)"
      R"( "neg": -42, "pi": 3.5, "flag": true, "nothing": null,)"
      R"( "list": ["a", "b"], "nested": {"k": 1}})");
  EXPECT_EQ(json.at("name").as_string(), "boxA");
  EXPECT_EQ(json.at("count").as_int64(), 3);
  EXPECT_EQ(json.at("big").as_uint64(), 18446744073709551615ull);
  EXPECT_EQ(json.at("neg").as_int64(), -42);
  EXPECT_DOUBLE_EQ(json.at("pi").as_double(), 3.5);
  EXPECT_TRUE(json.at("flag").as_bool());
  EXPECT_TRUE(json.at("nothing").is_null());
  ASSERT_EQ(json.at("list").as_array().size(), 2u);
  EXPECT_EQ(json.at("list").as_array()[1].as_string(), "b");
  EXPECT_EQ(json.at("nested").at("k").as_int64(), 1);
  EXPECT_EQ(json.find("absent"), nullptr);
  EXPECT_EQ(json.get_string("absent", "fallback"), "fallback");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(avis::util::Json::parse(""), avis::util::JsonError);
  EXPECT_THROW(avis::util::Json::parse("{"), avis::util::JsonError);
  EXPECT_THROW(avis::util::Json::parse("{} trailing"), avis::util::JsonError);
  EXPECT_THROW(avis::util::Json::parse(R"({"a": })"), avis::util::JsonError);
  EXPECT_THROW(avis::util::Json::parse(R"("unterminated)"), avis::util::JsonError);
  EXPECT_THROW(avis::util::Json::parse("-"), avis::util::JsonError);
  EXPECT_THROW(avis::util::Json::parse("tru"), avis::util::JsonError);
}

TEST(Json, EnforcesTheStrictNumberGrammar) {
  // RFC 8259: these are not numbers, and a conforming downstream consumer
  // of a scenario/report document would reject them too.
  for (const char* bad : {"1.", "1e", "1e+", "-.5", ".5", "01", "-"}) {
    EXPECT_THROW(avis::util::Json::parse(bad), avis::util::JsonError) << bad;
  }
  EXPECT_EQ(avis::util::Json::parse("0").as_int64(), 0);
  EXPECT_EQ(avis::util::Json::parse("-0").as_int64(), 0);
  EXPECT_DOUBLE_EQ(avis::util::Json::parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(avis::util::Json::parse("-2.5E-1").as_double(), -0.25);
}

TEST(Json, IntegerAccessorsRejectLossyValues) {
  const auto json = avis::util::Json::parse(R"({"frac": 1.25, "neg": -1})");
  EXPECT_THROW(json.at("frac").as_int64(), avis::util::JsonError);
  EXPECT_THROW(json.at("neg").as_uint64(), avis::util::JsonError);
  EXPECT_DOUBLE_EQ(json.at("frac").as_double(), 1.25);
}

TEST(Json, EscapesRoundTrip) {
  const std::string raw = "a\"b\\c\nd\te\x01";
  const std::string escaped = avis::util::json_escape(raw);
  const auto parsed = avis::util::Json::parse("\"" + escaped + "\"");
  EXPECT_EQ(parsed.as_string(), raw);
}

}  // namespace
