#include <gtest/gtest.h>

#include "fw/config.h"
#include "fw/controllers.h"

namespace avis::fw {
namespace {

class CascadeTest : public ::testing::Test {
 protected:
  ControlGains gains_;
  ControlCascade cascade_{ControlGains{}};
  EstimatedState est_;

  sim::MotorCommands update(const Setpoint& sp) { return cascade_.update(sp, est_, 0.001); }
};

TEST_F(CascadeTest, MotorsOffProducesZeroCommands) {
  Setpoint sp;
  sp.kind = Setpoint::Kind::kMotorsOff;
  const auto motors = update(sp);
  for (double v : motors.value) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST_F(CascadeTest, EmergencyDescendIsUniformReducedThrottle) {
  Setpoint sp;
  sp.kind = Setpoint::Kind::kEmergencyDescend;
  const auto motors = update(sp);
  for (double v : motors.value) {
    EXPECT_DOUBLE_EQ(v, motors.value[0]);  // uniform: no torque demands
    EXPECT_LT(v, ControlCascade::kHoverThrottle);
    EXPECT_GT(v, 0.8 * ControlCascade::kHoverThrottle);
  }
}

TEST_F(CascadeTest, HoverPositionHoldCommandsNearHoverThrottle) {
  est_.position = {0, 0, -10};
  Setpoint sp;
  sp.kind = Setpoint::Kind::kPosition;
  sp.position = {0, 0, -10};
  const auto motors = update(sp);
  const double mean = motors.total() / 4.0;
  EXPECT_NEAR(mean, ControlCascade::kHoverThrottle, 0.08);
}

TEST_F(CascadeTest, ClimbDemandRaisesThrottle) {
  est_.position = {0, 0, -10};
  Setpoint hold;
  hold.kind = Setpoint::Kind::kPosition;
  hold.position = {0, 0, -10};
  const double hold_total = update(hold).total();
  cascade_.reset();
  Setpoint climb;
  climb.kind = Setpoint::Kind::kVelocity;
  climb.velocity = {0, 0, -2.5};
  EXPECT_GT(update(climb).total(), hold_total);
}

TEST_F(CascadeTest, ForwardTargetPitchesNoseDown) {
  est_.position = {0, 0, -10};
  Setpoint sp;
  sp.kind = Setpoint::Kind::kPosition;
  sp.position = {20, 0, -10};  // 20 m north
  const auto motors = update(sp);
  // Nose-down pitch torque: back motors (1=BL, 3=BR) faster than front.
  EXPECT_GT(motors.value[1] + motors.value[3], motors.value[0] + motors.value[2]);
}

TEST_F(CascadeTest, EastTargetRollsRight) {
  est_.position = {0, 0, -10};
  Setpoint sp;
  sp.kind = Setpoint::Kind::kPosition;
  sp.position = {0, 20, -10};  // 20 m east -> roll right (+roll): left motors up
  const auto motors = update(sp);
  EXPECT_GT(motors.value[1] + motors.value[2], motors.value[0] + motors.value[3]);
}

TEST_F(CascadeTest, YawErrorDrivesYawTorque) {
  est_.position = {0, 0, -10};
  Setpoint sp;
  sp.kind = Setpoint::Kind::kPosition;
  sp.position = {0, 0, -10};
  sp.yaw = 1.0;  // est yaw 0 -> positive yaw torque: CCW pair (0,1) up
  const auto motors = update(sp);
  EXPECT_GT(motors.value[0] + motors.value[1], motors.value[2] + motors.value[3]);
}

TEST_F(CascadeTest, AttitudeSetpointControlsClimbRate) {
  est_.velocity = {0, 0, 0};
  Setpoint sp;
  sp.kind = Setpoint::Kind::kAttitude;
  sp.attitude = {};
  sp.climb_rate = -1.0;  // descend
  const auto descend = update(sp);
  cascade_.reset();
  sp.climb_rate = 1.5;  // climb
  const auto climbing = update(sp);
  EXPECT_GT(climbing.total(), descend.total());
}

TEST_F(CascadeTest, CommandsSaturateAtUnitRange) {
  est_.position = {0, 0, 0};
  est_.attitude.roll = -1.0;  // large attitude error
  Setpoint sp;
  sp.kind = Setpoint::Kind::kVelocity;
  sp.velocity = {0, 0, -10};
  const auto motors = update(sp);
  for (double v : motors.value) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Pid, ProportionalOnly) {
  Pid pid(2.0, 0.0, 0.0);
  EXPECT_NEAR(pid.update(1.5, 0.001), 3.0, 1e-9);
}

TEST(Pid, IntegralAccumulatesAndClamps) {
  Pid pid(0.0, 10.0, 0.0, 0.2);
  double out = 0.0;
  for (int i = 0; i < 10000; ++i) out = pid.update(1.0, 0.001);
  EXPECT_NEAR(out, 0.2, 1e-9);  // clamped at i_limit
}

TEST(Pid, DerivativeRespondsToChange) {
  Pid pid(0.0, 0.0, 0.01);
  pid.update(0.0, 0.001);
  const double out = pid.update(0.5, 0.001);
  EXPECT_NEAR(out, 0.01 * 0.5 / 0.001, 1e-6);
}

TEST(Pid, ResetClearsState) {
  Pid pid(1.0, 5.0, 0.0);
  for (int i = 0; i < 100; ++i) pid.update(1.0, 0.001);
  pid.reset();
  EXPECT_NEAR(pid.update(0.0, 0.001), 0.0, 1e-9);
}

}  // namespace
}  // namespace avis::fw
