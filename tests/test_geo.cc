#include <gtest/gtest.h>

#include <cmath>

#include "geo/attitude.h"
#include "geo/geodesy.h"
#include "geo/vec3.h"

namespace avis::geo {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, DotAndCross) {
  const Vec3 x{1, 0, 0};
  const Vec3 y{0, 1, 0};
  EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
  EXPECT_EQ(x.cross(y), (Vec3{0, 0, 1}));
  EXPECT_DOUBLE_EQ((Vec3{3, 4, 0}).norm(), 5.0);
}

TEST(Vec3, NormalizedZeroIsZero) {
  EXPECT_EQ(Vec3{}.normalized(), Vec3{});
  const Vec3 v = Vec3{0, 0, 2}.normalized();
  EXPECT_DOUBLE_EQ(v.norm(), 1.0);
}

TEST(Vec3, Clamped) {
  EXPECT_EQ((Vec3{5, -5, 0.5}).clamped(1.0), (Vec3{1, -1, 0.5}));
}

TEST(Vec3, EuclideanDistanceMatchesPaperFormula) {
  const Vec3 p1{1, 2, 3};
  const Vec3 p2{4, 6, 3};
  EXPECT_DOUBLE_EQ(euclidean_distance(p1, p2), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(p1, p1), 0.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(p1, p2), euclidean_distance(p2, p1));
}

TEST(Attitude, WrapAngle) {
  EXPECT_NEAR(wrap_angle(3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(-3 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(0.5), 0.5, 1e-12);
}

TEST(Attitude, LevelBodyToWorldIsIdentity) {
  const Attitude level;
  const geo::Vec3 v{1, 2, 3};
  const geo::Vec3 w = level.body_to_world(v);
  EXPECT_NEAR(w.x, 1, 1e-12);
  EXPECT_NEAR(w.y, 2, 1e-12);
  EXPECT_NEAR(w.z, 3, 1e-12);
}

TEST(Attitude, RoundTripWorldBody) {
  Attitude att;
  att.roll = 0.3;
  att.pitch = -0.2;
  att.yaw = 1.1;
  const Vec3 v{1, -2, 3};
  const Vec3 round = att.world_to_body(att.body_to_world(v));
  EXPECT_NEAR(round.x, v.x, 1e-10);
  EXPECT_NEAR(round.y, v.y, 1e-10);
  EXPECT_NEAR(round.z, v.z, 1e-10);
}

TEST(Attitude, ThrustDirectionUnderPitch) {
  // Nose-up pitch tilts body -z (thrust) backward along world -x.
  Attitude att;
  att.pitch = 0.2;
  const Vec3 thrust = att.body_to_world({0, 0, -1});
  EXPECT_LT(thrust.x, 0.0);
  EXPECT_LT(thrust.z, 0.0);
}

TEST(Attitude, ThrustDirectionUnderRoll) {
  // Positive roll tilts thrust toward world +y.
  Attitude att;
  att.roll = 0.2;
  const Vec3 thrust = att.body_to_world({0, 0, -1});
  EXPECT_GT(thrust.y, 0.0);
}

TEST(Attitude, IntegrateYawRate) {
  Attitude att;
  for (int i = 0; i < 1000; ++i) att.integrate_rates({0, 0, 0.5}, 0.001);
  EXPECT_NEAR(att.yaw, 0.5, 1e-6);
  EXPECT_NEAR(att.roll, 0.0, 1e-9);
}

TEST(Attitude, TiltCombinesRollPitch) {
  Attitude att;
  att.roll = 0.3;
  att.pitch = 0.4;
  EXPECT_DOUBLE_EQ(att.tilt(), 0.5);
}

TEST(Geodesy, HomeMapsToOrigin) {
  const GeoPoint home{40.0, -83.0, 200.0};
  LocalFrame frame(home);
  const Vec3 local = frame.to_local(home);
  EXPECT_NEAR(local.norm(), 0.0, 1e-9);
}

TEST(Geodesy, RoundTripSmallOffsets) {
  LocalFrame frame(GeoPoint{40.0, -83.0, 200.0});
  const Vec3 local{120.0, -45.0, -20.0};
  const Vec3 round = frame.to_local(frame.to_geodetic(local));
  EXPECT_NEAR(round.x, local.x, 1e-6);
  EXPECT_NEAR(round.y, local.y, 1e-6);
  EXPECT_NEAR(round.z, local.z, 1e-9);
}

TEST(Geodesy, NorthIncreasesLatitude) {
  LocalFrame frame(GeoPoint{40.0, -83.0, 200.0});
  const GeoPoint north = frame.to_geodetic({100.0, 0.0, 0.0});
  EXPECT_GT(north.latitude_deg, 40.0);
  EXPECT_NEAR(north.longitude_deg, -83.0, 1e-9);
}

TEST(Geodesy, AltitudeIsNegativeZ) {
  LocalFrame frame(GeoPoint{40.0, -83.0, 200.0});
  const GeoPoint up = frame.to_geodetic({0.0, 0.0, -30.0});
  EXPECT_NEAR(up.altitude_m, 230.0, 1e-9);
}

}  // namespace
}  // namespace avis::geo
