// Campaign-level parallel execution: a concurrent CampaignRunner run must
// produce cell reports bit-identical to a serial run_cell-style loop over
// the same grid, collected in deterministic grid order, regardless of the
// worker split (docs/PERFORMANCE.md, "Campaign-level parallelism").
#include <gtest/gtest.h>

#include "baselines/random_injection.h"
#include "core/campaign.h"
#include "core/sabre.h"
#include "test_helpers.h"
#include "util/checked.h"
#include "util/concurrency.h"
#include "util/json.h"

namespace {

using namespace avis;

// Enough simulated budget for several SABRE waves per cell while keeping
// the whole grid quick.
constexpr sim::SimTimeMs kBudgetMs = 300 * 1000;

core::StrategyFactory sabre_factory() {
  return [](const core::MonitorModel& model, std::uint64_t) {
    return std::make_unique<core::SabreScheduler>(core::SimulationHarness::iris_suite(),
                                                  model.golden_transitions());
  };
}

core::StrategyFactory random_factory() {
  return [](const core::MonitorModel& model, std::uint64_t seed) {
    return std::make_unique<baselines::RandomInjection>(
        core::SimulationHarness::iris_suite(), model.profiling_duration_ms(), seed);
  };
}

std::vector<core::CampaignCellSpec> test_grid() {
  std::vector<core::CampaignCellSpec> grid;
  for (const char* workload : {"auto", "box-manual"}) {
    for (const bool avis_cell : {true, false}) {
      core::CampaignCellSpec spec;
      spec.scenario.approach = avis_cell ? "avis" : "random";
      spec.scenario.personality = "ardupilot";
      spec.scenario.workload = workload;
      spec.scenario.budget_ms = kBudgetMs;
      spec.scenario.seed = 100;
      spec.scenario.strategy_seed = 107;
      // Pin custom factories through the compatibility hook: the parity
      // contract must hold for non-registry strategies too.
      spec.make_strategy = avis_cell ? sabre_factory() : random_factory();
      grid.push_back(std::move(spec));
    }
  }
  return grid;
}

// The serial reference: the run_cell loop every table bench used before the
// campaign runner — one Checker, strategy, and budget per cell, run through
// the serial checker path, in grid order.
std::vector<core::CheckerReport> serial_reference(
    const std::vector<core::CampaignCellSpec>& grid) {
  std::vector<core::CheckerReport> reports;
  for (const auto& spec : grid) {
    core::Checker checker(core::scenario_prototype(spec.scenario));
    auto strategy = spec.make_strategy(checker.model(), spec.scenario.strategy_seed);
    core::BudgetClock budget(spec.scenario.budget_ms);
    reports.push_back(checker.run(*strategy, budget));
  }
  return reports;
}

TEST(WorkerBudget, SplitNeverOversubscribes) {
  for (int total = 1; total <= 16; ++total) {
    for (int cells = 1; cells <= 24; ++cells) {
      const util::WorkerBudget split = util::split_worker_budget(total, cells);
      EXPECT_GE(split.campaign_workers, 1);
      EXPECT_GE(split.experiment_workers, 1);
      EXPECT_LE(split.campaign_workers, cells);
      EXPECT_LE(split.campaign_workers * split.experiment_workers, std::max(total, 1))
          << "total=" << total << " cells=" << cells;
    }
  }
}

TEST(WorkerBudget, FavoursCellsThenExperiments) {
  // 8 workers, 4 cells: all four cells run concurrently with 2 experiment
  // workers each.
  const util::WorkerBudget split = util::split_worker_budget(8, 4);
  EXPECT_EQ(split.campaign_workers, 4);
  EXPECT_EQ(split.experiment_workers, 2);
  // More cells than workers: one worker per cell, serial experiments.
  const util::WorkerBudget wide = util::split_worker_budget(4, 16);
  EXPECT_EQ(wide.campaign_workers, 4);
  EXPECT_EQ(wide.experiment_workers, 1);
  // Degenerate inputs clamp instead of dividing by zero.
  const util::WorkerBudget degenerate = util::split_worker_budget(0, 0);
  EXPECT_EQ(degenerate.campaign_workers, 1);
  EXPECT_EQ(degenerate.experiment_workers, 1);
}

TEST(WorkerBudget, SingleSidedOverrideRederivesTheOtherHalf) {
  // Pinning one half of the split must not oversubscribe the budget: the
  // free half is re-derived from what the pinned one leaves over.
  core::CampaignOptions options;
  options.total_workers = 8;
  options.experiment_workers = 4;
  EXPECT_EQ(core::CampaignRunner(options).worker_split(16).campaign_workers, 2);

  core::CampaignOptions by_cells;
  by_cells.total_workers = 8;
  by_cells.cell_workers = 2;
  EXPECT_EQ(core::CampaignRunner(by_cells).worker_split(16).experiment_workers, 4);

  // Both pinned: the caller owns the thread count verbatim.
  core::CampaignOptions pinned;
  pinned.total_workers = 2;
  pinned.cell_workers = 3;
  pinned.experiment_workers = 2;
  const util::WorkerBudget split = core::CampaignRunner(pinned).worker_split(16);
  EXPECT_EQ(split.campaign_workers, 3);
  EXPECT_EQ(split.experiment_workers, 2);
}

TEST(Campaign, ConcurrentCellsMatchSerialRunCellLoop) {
  const auto grid = test_grid();
  const std::vector<core::CheckerReport> serial = serial_reference(grid);
  ASSERT_GE(serial[0].experiments, 3) << "budget too small to exercise the campaign";

  core::CampaignOptions options;
  options.cell_workers = 3;       // cells genuinely run concurrently
  options.experiment_workers = 2; // and each cell batches experiments too
  const core::CampaignResult result = core::CampaignRunner(options).run(grid);

  ASSERT_EQ(result.cells.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    // Deterministic grid order: cell i of the result is cell i of the grid,
    // no matter which finished first.
    EXPECT_EQ(result.cells[i].spec.scenario.approach, grid[i].scenario.approach);
    EXPECT_EQ(result.cells[i].spec.scenario.workload, grid[i].scenario.workload);
    avis::testing::expect_reports_equal(serial[i], result.cells[i].report);
  }
  EXPECT_EQ(result.split.campaign_workers, 3);
  EXPECT_EQ(result.split.experiment_workers, 2);
  EXPECT_GT(result.wall_seconds, 0.0);
  for (const auto& cell : result.cells) {
    EXPECT_GT(cell.wall_seconds, 0.0);
    EXPECT_GT(cell.experiments_per_sec(), 0.0);
    EXPECT_NE(cell.strategy, nullptr);
  }
}

TEST(Campaign, JsonReportCarriesPerCellMetrics) {
  auto grid = test_grid();
  grid.resize(2);
  core::CampaignOptions options;
  options.cell_workers = 2;
  options.experiment_workers = 1;
  const core::CampaignResult result = core::CampaignRunner(options).run(grid);
  const std::string json = core::campaign_report_json(result);

  EXPECT_NE(json.find("\"cells\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cell_workers\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"approach\": \"Avis\""), std::string::npos);
  EXPECT_NE(json.find("\"approach\": \"Random\""), std::string::npos);
  EXPECT_NE(json.find("\"experiments\": "), std::string::npos);
  EXPECT_NE(json.find("\"experiments_per_sec\": "), std::string::npos);
  EXPECT_NE(json.find("\"unsafe_count\": "), std::string::npos);
  EXPECT_NE(json.find("\"bug_first_found\": "), std::string::npos);
  EXPECT_NE(json.find("\"unsafe_by_bucket\": ["), std::string::npos);
  // Grid order is preserved in the report.
  EXPECT_LT(json.find("\"index\": 0"), json.find("\"index\": 1"));

  // Execution provenance (docs/DISTRIBUTED.md): a single-process run is one
  // attempt per cell, completed locally, never reassigned.
  EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"completed_by\": \"local\""), std::string::npos);
  EXPECT_NE(json.find("\"reassigned_from\": []"), std::string::npos);

  // The campaign header carries checkpoint totals, and they are exactly the
  // sums of the per-cell counters — the invariant the distributed merge
  // path is held to.
  const util::Json parsed = util::Json::parse(json);
  const util::Json& campaign = parsed.at("campaign");
  std::int64_t hits = 0, misses = 0, evicted = 0, skipped = 0;
  for (const util::Json& cell : parsed.at("cells").as_array()) {
    hits += cell.at("checkpoint_hits").as_int64();
    misses += cell.at("checkpoint_misses").as_int64();
    evicted += cell.at("checkpoint_evicted").as_int64();
    skipped += cell.at("checkpoint_skipped_ms").as_int64();
  }
  EXPECT_EQ(campaign.at("checkpoint_hits").as_int64(), hits);
  EXPECT_EQ(campaign.at("checkpoint_misses").as_int64(), misses);
  EXPECT_EQ(campaign.at("checkpoint_evicted").as_int64(), evicted);
  EXPECT_EQ(campaign.at("checkpoint_skipped_ms").as_int64(), skipped);
  EXPECT_EQ(campaign.at("checkpoint_hits").as_int64(), result.total_checkpoint_hits());
  EXPECT_EQ(campaign.at("checkpoint_skipped_ms").as_int64(),
            result.total_checkpoint_skipped_ms());
}

TEST(Campaign, UnknownApproachFailsLoudly) {
  // A cell whose approach is not registered and that pins no custom
  // strategy factory must fail before any simulation runs, with the
  // registered-name listing.
  core::CampaignCellSpec broken;
  broken.scenario.approach = "broken";
  broken.scenario.budget_ms = 1000;
  try {
    core::CampaignRunner().run({broken});
    FAIL() << "expected UnknownNameError";
  } catch (const util::UnknownNameError& err) {
    EXPECT_NE(std::string(err.what()).find("registered approach"), std::string::npos)
        << err.what();
  }
}

}  // namespace
