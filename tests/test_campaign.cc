// Campaign-level parallel execution: a concurrent CampaignRunner run must
// produce cell reports bit-identical to a serial run_cell-style loop over
// the same grid, collected in deterministic grid order, regardless of the
// worker split (docs/PERFORMANCE.md, "Campaign-level parallelism").
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "baselines/random_injection.h"
#include "core/campaign.h"
#include "core/journal.h"
#include "core/sabre.h"
#include "core/scenario.h"
#include "test_helpers.h"
#include "util/checked.h"
#include "util/concurrency.h"
#include "util/json.h"

namespace {

using namespace avis;

// Enough simulated budget for several SABRE waves per cell while keeping
// the whole grid quick.
constexpr sim::SimTimeMs kBudgetMs = 300 * 1000;

core::StrategyFactory sabre_factory() {
  return [](const core::MonitorModel& model, std::uint64_t) {
    return std::make_unique<core::SabreScheduler>(core::SimulationHarness::iris_suite(),
                                                  model.golden_transitions());
  };
}

core::StrategyFactory random_factory() {
  return [](const core::MonitorModel& model, std::uint64_t seed) {
    return std::make_unique<baselines::RandomInjection>(
        core::SimulationHarness::iris_suite(), model.profiling_duration_ms(), seed);
  };
}

std::vector<core::CampaignCellSpec> test_grid() {
  std::vector<core::CampaignCellSpec> grid;
  for (const char* workload : {"auto", "box-manual"}) {
    for (const bool avis_cell : {true, false}) {
      core::CampaignCellSpec spec;
      spec.scenario.approach = avis_cell ? "avis" : "random";
      spec.scenario.personality = "ardupilot";
      spec.scenario.workload = workload;
      spec.scenario.budget_ms = kBudgetMs;
      spec.scenario.seed = 100;
      spec.scenario.strategy_seed = 107;
      // Pin custom factories through the compatibility hook: the parity
      // contract must hold for non-registry strategies too.
      spec.make_strategy = avis_cell ? sabre_factory() : random_factory();
      grid.push_back(std::move(spec));
    }
  }
  return grid;
}

// The serial reference: the run_cell loop every table bench used before the
// campaign runner — one Checker, strategy, and budget per cell, run through
// the serial checker path, in grid order.
std::vector<core::CheckerReport> serial_reference(
    const std::vector<core::CampaignCellSpec>& grid) {
  std::vector<core::CheckerReport> reports;
  for (const auto& spec : grid) {
    core::Checker checker(core::scenario_prototype(spec.scenario));
    auto strategy = spec.make_strategy(checker.model(), spec.scenario.strategy_seed);
    core::BudgetClock budget(spec.scenario.budget_ms);
    reports.push_back(checker.run(*strategy, budget));
  }
  return reports;
}

TEST(WorkerBudget, SplitNeverOversubscribes) {
  for (int total = 1; total <= 16; ++total) {
    for (int cells = 1; cells <= 24; ++cells) {
      const util::WorkerBudget split = util::split_worker_budget(total, cells);
      EXPECT_GE(split.campaign_workers, 1);
      EXPECT_GE(split.experiment_workers, 1);
      EXPECT_LE(split.campaign_workers, cells);
      EXPECT_LE(split.campaign_workers * split.experiment_workers, std::max(total, 1))
          << "total=" << total << " cells=" << cells;
    }
  }
}

TEST(WorkerBudget, FavoursCellsThenExperiments) {
  // 8 workers, 4 cells: all four cells run concurrently with 2 experiment
  // workers each.
  const util::WorkerBudget split = util::split_worker_budget(8, 4);
  EXPECT_EQ(split.campaign_workers, 4);
  EXPECT_EQ(split.experiment_workers, 2);
  // More cells than workers: one worker per cell, serial experiments.
  const util::WorkerBudget wide = util::split_worker_budget(4, 16);
  EXPECT_EQ(wide.campaign_workers, 4);
  EXPECT_EQ(wide.experiment_workers, 1);
  // Degenerate inputs clamp instead of dividing by zero.
  const util::WorkerBudget degenerate = util::split_worker_budget(0, 0);
  EXPECT_EQ(degenerate.campaign_workers, 1);
  EXPECT_EQ(degenerate.experiment_workers, 1);
}

TEST(WorkerBudget, SingleSidedOverrideRederivesTheOtherHalf) {
  // Pinning one half of the split must not oversubscribe the budget: the
  // free half is re-derived from what the pinned one leaves over.
  core::CampaignOptions options;
  options.total_workers = 8;
  options.experiment_workers = 4;
  EXPECT_EQ(core::CampaignRunner(options).worker_split(16).campaign_workers, 2);

  core::CampaignOptions by_cells;
  by_cells.total_workers = 8;
  by_cells.cell_workers = 2;
  EXPECT_EQ(core::CampaignRunner(by_cells).worker_split(16).experiment_workers, 4);

  // Both pinned: the caller owns the thread count verbatim.
  core::CampaignOptions pinned;
  pinned.total_workers = 2;
  pinned.cell_workers = 3;
  pinned.experiment_workers = 2;
  const util::WorkerBudget split = core::CampaignRunner(pinned).worker_split(16);
  EXPECT_EQ(split.campaign_workers, 3);
  EXPECT_EQ(split.experiment_workers, 2);
}

TEST(Campaign, ConcurrentCellsMatchSerialRunCellLoop) {
  const auto grid = test_grid();
  const std::vector<core::CheckerReport> serial = serial_reference(grid);
  ASSERT_GE(serial[0].experiments, 3) << "budget too small to exercise the campaign";

  core::CampaignOptions options;
  options.cell_workers = 3;       // cells genuinely run concurrently
  options.experiment_workers = 2; // and each cell batches experiments too
  const core::CampaignResult result = core::CampaignRunner(options).run(grid);

  ASSERT_EQ(result.cells.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    // Deterministic grid order: cell i of the result is cell i of the grid,
    // no matter which finished first.
    EXPECT_EQ(result.cells[i].spec.scenario.approach, grid[i].scenario.approach);
    EXPECT_EQ(result.cells[i].spec.scenario.workload, grid[i].scenario.workload);
    avis::testing::expect_reports_equal(serial[i], result.cells[i].report);
  }
  EXPECT_EQ(result.split.campaign_workers, 3);
  EXPECT_EQ(result.split.experiment_workers, 2);
  EXPECT_GT(result.wall_seconds, 0.0);
  for (const auto& cell : result.cells) {
    EXPECT_GT(cell.wall_seconds, 0.0);
    EXPECT_GT(cell.experiments_per_sec(), 0.0);
    EXPECT_NE(cell.strategy, nullptr);
  }
}

TEST(Campaign, JsonReportCarriesPerCellMetrics) {
  auto grid = test_grid();
  grid.resize(2);
  core::CampaignOptions options;
  options.cell_workers = 2;
  options.experiment_workers = 1;
  const core::CampaignResult result = core::CampaignRunner(options).run(grid);
  const std::string json = core::campaign_report_json(result);

  EXPECT_NE(json.find("\"cells\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"cell_workers\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"approach\": \"Avis\""), std::string::npos);
  EXPECT_NE(json.find("\"approach\": \"Random\""), std::string::npos);
  EXPECT_NE(json.find("\"experiments\": "), std::string::npos);
  EXPECT_NE(json.find("\"experiments_per_sec\": "), std::string::npos);
  EXPECT_NE(json.find("\"unsafe_count\": "), std::string::npos);
  EXPECT_NE(json.find("\"bug_first_found\": "), std::string::npos);
  EXPECT_NE(json.find("\"unsafe_by_bucket\": ["), std::string::npos);
  // Grid order is preserved in the report.
  EXPECT_LT(json.find("\"index\": 0"), json.find("\"index\": 1"));

  // Execution provenance (docs/DISTRIBUTED.md): a single-process run is one
  // attempt per cell, completed locally, never reassigned.
  EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"completed_by\": \"local\""), std::string::npos);
  EXPECT_NE(json.find("\"reassigned_from\": []"), std::string::npos);

  // The campaign header carries checkpoint totals, and they are exactly the
  // sums of the per-cell counters — the invariant the distributed merge
  // path is held to.
  const util::Json parsed = util::Json::parse(json);
  const util::Json& campaign = parsed.at("campaign");
  std::int64_t hits = 0, misses = 0, evicted = 0, skipped = 0;
  for (const util::Json& cell : parsed.at("cells").as_array()) {
    hits += cell.at("checkpoint_hits").as_int64();
    misses += cell.at("checkpoint_misses").as_int64();
    evicted += cell.at("checkpoint_evicted").as_int64();
    skipped += cell.at("checkpoint_skipped_ms").as_int64();
  }
  EXPECT_EQ(campaign.at("checkpoint_hits").as_int64(), hits);
  EXPECT_EQ(campaign.at("checkpoint_misses").as_int64(), misses);
  EXPECT_EQ(campaign.at("checkpoint_evicted").as_int64(), evicted);
  EXPECT_EQ(campaign.at("checkpoint_skipped_ms").as_int64(), skipped);
  EXPECT_EQ(campaign.at("checkpoint_hits").as_int64(), result.total_checkpoint_hits());
  EXPECT_EQ(campaign.at("checkpoint_skipped_ms").as_int64(),
            result.total_checkpoint_skipped_ms());
}

// Registry-named grid for the crash-safety tests: journal records identify
// cells by their serialized ScenarioSpec, so custom factories do not apply.
std::vector<core::CampaignCellSpec> journal_grid() {
  core::ScenarioGrid grid;
  grid.approaches = {"avis", "random"};
  grid.personalities = {"ardupilot"};
  grid.workloads = {"box-manual"};
  grid.environments = {"calm"};
  grid.budget_ms = 20000;
  grid.seed = 100;
  return core::expand_to_cells(grid);
}

// The tentpole contract: interrupt a journaled campaign partway, resume it
// from the journal, and the merged report is identical to an uninterrupted
// run — wall-clock fields aside (expect_campaign_results_equal masks them).
TEST(Campaign, ResumeFromJournalMatchesUninterruptedRun) {
  const auto grid = journal_grid();
  core::CampaignOptions base;
  base.cell_workers = 1;  // serial: should_stop cuts at a deterministic cell
  base.experiment_workers = 2;
  const core::CampaignResult reference = core::CampaignRunner(base).run(grid);

  const std::string path = ::testing::TempDir() + "avis_campaign_resume_" +
                           std::to_string(::getpid()) + ".jsonl";

  // First run: journal every completion, "SIGINT" after the first cell (the
  // stop callback is polled between cells; the first poll admits cell 0).
  {
    core::CampaignJournal journal = core::CampaignJournal::start(
        path, core::CampaignJournal::bind(grid, base.checkpoints, base.batch_width));
    core::CampaignOptions first = base;
    first.journal = &journal;
    int polls = 0;
    first.should_stop = [&polls] { return polls++ >= 1; };
    const core::CampaignResult partial = core::CampaignRunner(first).run(grid);

    EXPECT_TRUE(partial.interrupted);
    ASSERT_EQ(partial.cells.size(), 1u);
    EXPECT_EQ(partial.cells[0].grid_index, 0);
    // The partial report says so, and keeps honest grid indices; the full
    // reference report carries no interrupted marker at all.
    const std::string partial_json = core::campaign_report_json(partial);
    EXPECT_NE(partial_json.find("\"interrupted\": true"), std::string::npos);
    EXPECT_NE(partial_json.find("\"index\": 0"), std::string::npos);
    EXPECT_EQ(core::campaign_report_json(reference).find("\"interrupted\""),
              std::string::npos);
  }

  // Resume: the journal binds this exact campaign, cell 0 is merged from the
  // journal (not re-run), and the rest complete.
  const auto loaded = core::CampaignJournal::load(path);
  EXPECT_FALSE(loaded.dropped_torn_record);
  ASSERT_EQ(loaded.cells.size(), 1u);
  EXPECT_EQ(core::CampaignJournal::header_diff(
                loaded.header,
                core::CampaignJournal::bind(grid, base.checkpoints, base.batch_width), grid),
            "");

  core::CampaignJournal journal = core::CampaignJournal::append_to(path);
  core::CampaignOptions second = base;
  second.journal = &journal;
  second.resume = &loaded.cells;
  const core::CampaignResult resumed = core::CampaignRunner(second).run(grid);

  EXPECT_FALSE(resumed.interrupted);
  avis::testing::expect_campaign_results_equal(reference, resumed);
  ASSERT_EQ(resumed.cells.size(), grid.size());
  for (std::size_t i = 0; i < resumed.cells.size(); ++i) {
    EXPECT_EQ(resumed.cells[i].grid_index, static_cast<int>(i));
  }

  // After the resumed run the journal holds the whole campaign: resuming
  // again would re-run nothing.
  const auto complete = core::CampaignJournal::load(path);
  EXPECT_EQ(complete.cells.size(), grid.size());
  std::filesystem::remove(path);
}

// A resume against a drifted grid must be refused before any simulation:
// merging cells from two different campaigns would be silent corruption.
TEST(Campaign, ResumeRefusesDriftedGrid) {
  const auto grid = journal_grid();
  const std::string path = ::testing::TempDir() + "avis_campaign_drift_" +
                           std::to_string(::getpid()) + ".jsonl";
  {
    core::CampaignJournal journal =
        core::CampaignJournal::start(path, core::CampaignJournal::bind(grid, {}, 0));
  }
  auto drifted_grid = journal_grid();
  drifted_grid[0].scenario.seed = 999;
  const auto loaded = core::CampaignJournal::load(path);
  const std::string diff = core::CampaignJournal::header_diff(
      loaded.header, core::CampaignJournal::bind(drifted_grid, {}, 0), drifted_grid);
  EXPECT_NE(diff, "");
  EXPECT_NE(diff.find("cell 0"), std::string::npos) << diff;

  core::CheckpointConfig no_trees;
  no_trees.trees = false;
  EXPECT_NE(core::CampaignJournal::header_diff(
                loaded.header, core::CampaignJournal::bind(grid, no_trees, 0), grid),
            "");
  std::filesystem::remove(path);
}

// Pooled path: with concurrent cell workers, a stop request still yields a
// valid partial (in-flight cells finish and are journaled; unstarted cells
// are skipped) that a resumed run completes to the identical full report.
TEST(Campaign, PooledInterruptThenResumeCompletesIdentically) {
  const auto grid = journal_grid();
  core::CampaignOptions base;
  base.cell_workers = 2;
  base.experiment_workers = 1;
  const core::CampaignResult reference = core::CampaignRunner(base).run(grid);

  const std::string path = ::testing::TempDir() + "avis_campaign_pooled_" +
                           std::to_string(::getpid()) + ".jsonl";
  {
    core::CampaignJournal journal = core::CampaignJournal::start(
        path, core::CampaignJournal::bind(grid, base.checkpoints, base.batch_width));
    core::CampaignOptions first = base;
    first.journal = &journal;
    first.should_stop = [] { return true; };  // stop before anything starts
    const core::CampaignResult partial = core::CampaignRunner(first).run(grid);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_TRUE(partial.cells.empty());
  }

  const auto loaded = core::CampaignJournal::load(path);
  core::CampaignJournal journal = core::CampaignJournal::append_to(path);
  core::CampaignOptions second = base;
  second.journal = &journal;
  second.resume = &loaded.cells;
  const core::CampaignResult resumed = core::CampaignRunner(second).run(grid);
  EXPECT_FALSE(resumed.interrupted);
  avis::testing::expect_campaign_results_equal(reference, resumed);
  std::filesystem::remove(path);
}

TEST(Campaign, UnknownApproachFailsLoudly) {
  // A cell whose approach is not registered and that pins no custom
  // strategy factory must fail before any simulation runs, with the
  // registered-name listing.
  core::CampaignCellSpec broken;
  broken.scenario.approach = "broken";
  broken.scenario.budget_ms = 1000;
  try {
    core::CampaignRunner().run({broken});
    FAIL() << "expected UnknownNameError";
  } catch (const util::UnknownNameError& err) {
    EXPECT_NE(std::string(err.what()).find("registered approach"), std::string::npos)
        << err.what();
  }
}

}  // namespace
