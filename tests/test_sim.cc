#include <gtest/gtest.h>

#include "sim/environment.h"
#include "sim/quadcopter.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace avis::sim {
namespace {

MotorCommands uniform(double throttle) {
  MotorCommands m;
  for (double& v : m.value) v = throttle;
  return m;
}

class QuadcopterTest : public ::testing::Test {
 protected:
  Environment env_;
  QuadcopterDynamics dynamics_;
  VehicleState state_;
  util::Rng rng_{1};

  CrashCause step_n(const MotorCommands& motors, int n) {
    CrashCause last = CrashCause::kNone;
    for (int i = 0; i < n; ++i) {
      const CrashCause c = dynamics_.step(state_, motors, env_, kStepSeconds, rng_);
      if (c != CrashCause::kNone) last = c;
    }
    return last;
  }
};

TEST_F(QuadcopterTest, RestsOnGroundWithMotorsOff) {
  step_n({}, 1000);
  EXPECT_TRUE(state_.on_ground);
  EXPECT_FALSE(state_.crashed);
  EXPECT_NEAR(state_.position.z, 0.0, 1e-9);
}

TEST_F(QuadcopterTest, HoverThrottleApproximatelyBalances) {
  // hover = m*g / (4*Fmax) = 1.5*9.80665 / 29.6
  const double hover = 1.5 * 9.80665 / (4.0 * dynamics_.params().max_motor_thrust_n);
  state_.position.z = -10.0;
  state_.on_ground = false;
  step_n(uniform(hover), 2000);
  // Slight drift is fine; it must not gain or lose more than a metre in 2 s.
  EXPECT_NEAR(state_.altitude(), 10.0, 1.0);
}

TEST_F(QuadcopterTest, ClimbsUnderExcessThrust) {
  step_n(uniform(0.8), 1500);
  EXPECT_GT(state_.altitude(), 3.0);
  EXPECT_FALSE(state_.on_ground);
}

TEST_F(QuadcopterTest, MotorLagSmoothsCommands) {
  state_.position.z = -10.0;
  state_.on_ground = false;
  dynamics_.step(state_, uniform(1.0), env_, kStepSeconds, rng_);
  // After one 1 ms step the motors must not have reached the command.
  EXPECT_LT(state_.motors.value[0], 0.2);
}

TEST_F(QuadcopterTest, GentleDescentLandsWithoutCrash) {
  state_.position.z = -3.0;
  state_.on_ground = false;
  state_.velocity.z = 1.0;  // descending 1 m/s
  const double near_hover = 0.46;
  step_n(uniform(near_hover), 6000);
  EXPECT_TRUE(state_.on_ground);
  EXPECT_FALSE(state_.crashed);
}

TEST_F(QuadcopterTest, FastDescentIsAHardLanding) {
  state_.position.z = -8.0;
  state_.on_ground = false;
  state_.velocity.z = 3.5;  // descending fast, motors off
  const CrashCause cause = step_n({}, 4000);
  EXPECT_TRUE(state_.crashed);
  EXPECT_EQ(cause, CrashCause::kHardLanding);
}

TEST_F(QuadcopterTest, TiltedContactTipsOver) {
  // Gentle contact (below the hard-landing limit) but heavily tilted.
  state_.position.z = -0.15;
  state_.on_ground = false;
  state_.velocity.z = 0.3;
  state_.attitude.roll = 1.2;  // ~69 degrees
  const CrashCause cause = step_n({}, 2000);
  EXPECT_TRUE(state_.crashed);
  EXPECT_EQ(cause, CrashCause::kTippedOver);
}

TEST_F(QuadcopterTest, LateralImpactDetected) {
  // Gentle vertical contact, level attitude, but sliding fast sideways.
  state_.position.z = -0.15;
  state_.on_ground = false;
  state_.velocity = {6.0, 0.0, 0.2};
  const CrashCause cause = step_n({}, 2000);
  EXPECT_TRUE(state_.crashed);
  EXPECT_EQ(cause, CrashCause::kLateralImpact);
}

TEST_F(QuadcopterTest, CrashedVehicleStaysPut) {
  state_.position.z = -5.0;
  state_.on_ground = false;
  state_.velocity.z = 4.0;
  step_n({}, 3000);
  ASSERT_TRUE(state_.crashed);
  const geo::Vec3 resting = state_.position;
  step_n(uniform(1.0), 1000);  // full throttle does nothing to a wreck
  EXPECT_EQ(state_.position, resting);
}

TEST_F(QuadcopterTest, BatteryDrainsFasterAtHighThrust) {
  VehicleState high = state_;
  VehicleState low = state_;
  high.position.z = low.position.z = -50.0;
  high.on_ground = low.on_ground = false;
  util::Rng rng_a{1};
  util::Rng rng_b{1};
  for (int i = 0; i < 2000; ++i) {
    dynamics_.step(high, uniform(0.9), env_, kStepSeconds, rng_a);
    dynamics_.step(low, uniform(0.3), env_, kStepSeconds, rng_b);
  }
  EXPECT_LT(high.battery_remaining, low.battery_remaining);
  EXPECT_LT(high.battery_voltage, low.battery_voltage);
}

TEST_F(QuadcopterTest, YawTorqueFromDifferentialPairs) {
  state_.position.z = -10.0;
  state_.on_ground = false;
  MotorCommands m;
  m.value = {0.6, 0.6, 0.4, 0.4};  // CCW pair faster -> positive yaw torque
  step_n(m, 300);
  EXPECT_GT(state_.body_rates.z, 0.05);
}

TEST_F(QuadcopterTest, RollTorqueFromLeftRightSplit) {
  state_.position.z = -10.0;
  state_.on_ground = false;
  MotorCommands m;
  m.value = {0.4, 0.6, 0.6, 0.4};  // left motors (1=BL, 2=FL) faster -> +roll
  step_n(m, 200);
  EXPECT_GT(state_.body_rates.x, 0.05);
}

TEST(Environment, ObstacleContainment) {
  Obstacle box{{0, 0, -10}, {5, 5, 0}};
  EXPECT_TRUE(box.contains({2, 2, -5}));
  EXPECT_FALSE(box.contains({6, 2, -5}));
  Environment env;
  env.add_obstacle(box);
  EXPECT_TRUE(env.hits_obstacle({1, 1, -1}));
  EXPECT_FALSE(env.hits_obstacle({-1, 1, -1}));
}

TEST(Environment, FenceViolation) {
  Fence fence;
  fence.min_north = -5;
  fence.max_north = 30;
  fence.min_east = -5;
  fence.max_east = 30;
  fence.max_altitude = 40;
  EXPECT_FALSE(fence.violates({10, 10, -20}));
  EXPECT_TRUE(fence.violates({31, 10, -20}));
  EXPECT_TRUE(fence.violates({10, -6, -20}));
  EXPECT_TRUE(fence.violates({10, 10, -41}));
}

TEST(Environment, ObstacleCollisionCrashes) {
  Environment env;
  env.add_obstacle(Obstacle{{0.5, -2, -6}, {8, 2, 0}});
  QuadcopterDynamics dynamics;
  VehicleState state;
  state.position = {-2.0, 0.0, -4.0};
  state.on_ground = false;
  state.velocity = {4.0, 0.0, 0.0};
  util::Rng rng(1);
  CrashCause cause = CrashCause::kNone;
  for (int i = 0; i < 3000 && cause == CrashCause::kNone; ++i) {
    cause = dynamics.step(state, {}, env, kStepSeconds, rng);
    if (state.on_ground) break;
  }
  EXPECT_EQ(cause, CrashCause::kObstacle);
}

TEST(Simulator, AdvancesTimeAndNotifiesObservers) {
  Simulator simulator(Environment{}, QuadcopterParams{}, 7);
  int events = 0;
  simulator.add_observer([&](const StepEvent& e) {
    ++events;
    EXPECT_NE(e.state, nullptr);
  });
  for (int i = 0; i < 50; ++i) simulator.step({});
  EXPECT_EQ(simulator.now_ms(), 50);
  EXPECT_DOUBLE_EQ(simulator.now_seconds(), 0.05);
  EXPECT_EQ(events, 50);
}

TEST(Simulator, DeterministicForSameSeed) {
  Simulator a(Environment{}, QuadcopterParams{}, 3);
  Simulator b(Environment{}, QuadcopterParams{}, 3);
  MotorCommands m;
  m.value = {0.7, 0.6, 0.65, 0.62};
  for (int i = 0; i < 2000; ++i) {
    a.step(m);
    b.step(m);
  }
  EXPECT_EQ(a.state().position, b.state().position);
  EXPECT_EQ(a.state().velocity, b.state().velocity);
}

}  // namespace
}  // namespace avis::sim
