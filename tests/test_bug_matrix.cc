// The seeded-bug window matrix: for every Table II / Table V bug, an
// injection inside its window fires the bug and produces an invariant
// violation, while a representative injection outside the window is handled
// safely. This is the repository's core fidelity property: bug
// manifestation depends on the failure's type AND timing (paper §I).
#include <gtest/gtest.h>

#include "core/checker.h"
#include "core/sabre.h"
#include "test_helpers.h"

namespace avis {
namespace {

using core::FaultPlan;
using testing::cached_checker;
using testing::transition_time;

struct BugCase {
  fw::BugId bug;
  workload::WorkloadId workload;
  // Where to inject, relative to a named golden transition.
  const char* anchor_mode;
  sim::SimTimeMs offset_ms;
  std::vector<sensors::SensorId> sensors;
  // A time far outside the window where the same failure is handled safely
  // (relative to another anchor). Empty anchor = skip the safe check.
  const char* safe_anchor_mode;
  sim::SimTimeMs safe_offset_ms;
};

class BugMatrix : public ::testing::TestWithParam<BugCase> {};

TEST_P(BugMatrix, FiresInWindowAndOnlyInWindow) {
  const BugCase& c = GetParam();
  const fw::BugInfo& info = fw::bug_info(c.bug);

  fw::BugRegistry bugs = fw::BugRegistry::current_code_base();
  bugs.enable(c.bug);  // no-op for Table II bugs, re-insertion for Table V

  auto& checker = cached_checker(info.personality, c.workload);
  const core::MonitorModel& model = checker.model();

  // In-window injection: the bug fires and the monitor reports a violation.
  FaultPlan in_window;
  const sim::SimTimeMs anchor = transition_time(model, c.anchor_mode);
  for (const auto& id : c.sensors) in_window.add(anchor + c.offset_ms, id);
  const auto unsafe = testing::run_plan(info.personality, c.workload, in_window, bugs, &model);
  EXPECT_TRUE(std::find(unsafe.fired_bugs.begin(), unsafe.fired_bugs.end(), c.bug) !=
              unsafe.fired_bugs.end())
      << info.report_name << " did not fire for " << in_window.to_string();
  EXPECT_TRUE(unsafe.violation.has_value())
      << info.report_name << " fired without an invariant violation";

  // Out-of-window injection of the same sensors: handled safely.
  if (c.safe_anchor_mode != nullptr) {
    FaultPlan outside;
    const sim::SimTimeMs safe_anchor = transition_time(model, c.safe_anchor_mode);
    for (const auto& id : c.sensors) outside.add(safe_anchor + c.safe_offset_ms, id);
    const auto safe = testing::run_plan(info.personality, c.workload, outside, bugs, &model);
    EXPECT_FALSE(std::find(safe.fired_bugs.begin(), safe.fired_bugs.end(), c.bug) !=
                 safe.fired_bugs.end())
        << info.report_name << " fired outside its window for " << outside.to_string();
    EXPECT_FALSE(safe.violation.has_value())
        << info.report_name << ": out-of-window injection " << outside.to_string()
        << " was not handled safely (" << (safe.violation ? safe.violation->details : "")
        << ")";
  }
}

const sensors::SensorId kGyroP{sensors::SensorType::kGyroscope, 0};
const sensors::SensorId kAccelP{sensors::SensorType::kAccelerometer, 0};
const sensors::SensorId kBaro{sensors::SensorType::kBarometer, 0};
const sensors::SensorId kGps{sensors::SensorType::kGps, 0};
const sensors::SensorId kCompassP{sensors::SensorType::kCompass, 0};
const sensors::SensorId kBattery{sensors::SensorType::kBattery, 0};

INSTANTIATE_TEST_SUITE_P(
    TableII, BugMatrix,
    ::testing::Values(
        // APM-16020: GPS right after Takeoff -> Auto; safe in mid-leg cruise.
        BugCase{fw::BugId::kApm16020, workload::WorkloadId::kFenceMission, "auto-wp1", 100,
                {kGps}, "auto-wp2", 2600},
        // APM-16021: accel late in the climb; safe early in the climb.
        BugCase{fw::BugId::kApm16021, workload::WorkloadId::kFenceMission, "auto-wp1", -600,
                {kAccelP}, "takeoff", 500},
        // APM-16027: baro at takeoff start; safe mid-mission (failsafe land).
        BugCase{fw::BugId::kApm16027, workload::WorkloadId::kFenceMission, "takeoff", 100,
                {kBaro}, "auto-wp2", 500},
        // APM-16967: primary compass at a waypoint turn; safe mid-leg.
        BugCase{fw::BugId::kApm16967, workload::WorkloadId::kFenceMission, "auto-wp2", 200,
                {kCompassP}, "auto-wp1", 2600},
        // APM-16682: accel in the final landing metres; safe at land start.
        BugCase{fw::BugId::kApm16682, workload::WorkloadId::kFenceMission, "land", 17000,
                {kAccelP}, nullptr, 0},
        // APM-16953: gyro primary entering land; safe during cruise.
        BugCase{fw::BugId::kApm16953, workload::WorkloadId::kFenceMission, "land", 300,
                {kGyroP}, "auto-wp1", 1500},
        // PX4-17046: gyro primary at the wp3 -> RTL boundary; safe in leg 1.
        BugCase{fw::BugId::kPx417046, workload::WorkloadId::kFenceMission, "rtl", -200,
                {kGyroP}, "auto-wp1", 1500},
        // PX4-17057: gyro primary at takeoff; safe during cruise.
        BugCase{fw::BugId::kPx417057, workload::WorkloadId::kFenceMission, "takeoff", 100,
                {kGyroP}, "auto-wp1", 1500},
        // PX4-17192: compass primary at takeoff; safe during cruise.
        BugCase{fw::BugId::kPx417192, workload::WorkloadId::kFenceMission, "takeoff", 100,
                {kCompassP}, "auto-wp1", 2600},
        // PX4-17181: baro at takeoff; safe mid-mission.
        BugCase{fw::BugId::kPx417181, workload::WorkloadId::kFenceMission, "takeoff", 100,
                {kBaro}, "auto-wp2", 500}),
    [](const ::testing::TestParamInfo<BugCase>& info) {
      std::string name = fw::bug_info(info.param.bug).report_name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

INSTANTIATE_TEST_SUITE_P(
    TableV, BugMatrix,
    ::testing::Values(
        // APM-4455: baro as the climb completes (above 60% of target).
        BugCase{fw::BugId::kApm4455, workload::WorkloadId::kFenceMission, "takeoff", 5800,
                {kBaro}, nullptr, 0},
        // APM-4679: GPS during the landing descent.
        BugCase{fw::BugId::kApm4679, workload::WorkloadId::kFenceMission, "land", 3000,
                {kGps}, "auto-wp1", 2600},
        // APM-5428: compass primary during takeoff yaw-align.
        BugCase{fw::BugId::kApm5428, workload::WorkloadId::kFenceMission, "takeoff", 400,
                {kCompassP}, nullptr, 0},
        // APM-9349: accel primary during a waypoint turn.
        BugCase{fw::BugId::kApm9349, workload::WorkloadId::kFenceMission, "auto-wp2", 300,
                {kAccelP}, nullptr, 0},
        // PX4-13291: GPS and battery together while airborne.
        BugCase{fw::BugId::kPx413291, workload::WorkloadId::kFenceMission, "auto-wp1", 500,
                {kGps, kBattery}, nullptr, 0}),
    [](const ::testing::TestParamInfo<BugCase>& info) {
      std::string name = fw::bug_info(info.param.bug).report_name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// The patched firmware finds nothing: with every seeded bug disabled, a
// sweep of single-sensor injections at every transition is handled safely —
// Avis's "no false positives" property (paper §VI-A).
TEST(PatchedFirmware, SingletonSweepIsSafe) {
  for (fw::Personality personality :
       {fw::Personality::kArduPilotLike, fw::Personality::kPx4Like}) {
    core::Checker checker(personality, workload::WorkloadId::kFenceMission,
                          fw::BugRegistry::patched());
    const core::MonitorModel& model = checker.model();
    core::SabreConfig config;
    config.max_set_size = 1;    // single-sensor sweep: multi-IMU loss is
    config.max_plan_events = 1; // physically unsurvivable (see DESIGN.md)
    core::SabreScheduler sabre(core::SimulationHarness::iris_suite(),
                               model.golden_transitions(), config);
    core::BudgetClock budget(40 * 60 * 1000);
    const auto report = checker.run(sabre, budget);
    EXPECT_EQ(report.unsafe_count(), 0)
        << fw::to_string(personality) << ": " << report.unsafe[0].plan.to_string() << " -> "
        << report.unsafe[0].violation.details;
    EXPECT_GT(report.experiments, 10);
  }
}

}  // namespace
}  // namespace avis
