// util/json.h is a wire format (scenario files, and the distributed
// campaign protocol in src/net/), so it must be robust against adversarial
// and truncated input: every malformed document raises a clean JsonError —
// never UB, unbounded recursion, or an exception type the frame dispatcher
// does not expect.
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace {

using avis::util::Json;
using avis::util::JsonError;
using avis::util::JsonLimits;

struct MalformedCase {
  const char* name;
  const char* input;
  const char* expected_error_substring;
};

// The malformed-input table: one row per distinct failure class. Each must
// throw JsonError carrying the expected diagnostic.
const MalformedCase kMalformed[] = {
    {"empty document", "", "unexpected end of input"},
    {"object cut at brace", "{", "unexpected end of input"},
    {"object cut after key", "{\"a\"", "unexpected end of input"},
    {"object cut after colon", "{\"a\":", "unexpected end of input"},
    {"array cut after comma", "[1,", "unexpected end of input"},
    {"object missing colon", "{\"a\" 1}", "expected ':'"},
    {"object single-quoted key", "{'a': 1}", "expected '\"'"},
    {"object trailing comma", "{\"a\": 1,}", "expected '\"'"},
    {"array missing comma", "[1 2]", "expected ']'"},
    {"unterminated string", "\"abc", "unterminated string"},
    {"unterminated escape", "\"ab\\", "unterminated escape"},
    {"truncated unicode escape", "\"\\u12", "truncated \\u escape"},
    {"bad unicode hex digit", "\"\\u12zx\"", "invalid hex digit"},
    {"surrogate escape", "\"\\ud800\"", "surrogate pairs are not supported"},
    {"invalid escape char", "\"\\q\"", "invalid escape character"},
    {"raw control char in string", "\"a\x01b\"", "unescaped control character"},
    {"mid-keyword EOF true", "tru", "invalid literal"},
    {"mid-keyword EOF null", "nul", "invalid literal"},
    {"misspelled keyword", "folse", "invalid literal"},
    {"trailing garbage", "false y", "trailing characters"},
    {"second document", "{} {}", "trailing characters"},
    {"leading zero", "01", "leading zero"},
    {"bare minus", "-", "invalid number"},
    {"plus-signed number", "+1", "invalid number"},
    {"dot without digits", "1.", "digits required after decimal point"},
    {"exponent without digits", "1e", "digits required in exponent"},
    {"exponent bare sign", "1e+", "digits required in exponent"},
};

TEST(JsonRobust, MalformedInputTable) {
  for (const MalformedCase& c : kMalformed) {
    SCOPED_TRACE(c.name);
    try {
      Json::parse(c.input);
      ADD_FAILURE() << "accepted malformed input: " << c.input;
    } catch (const JsonError& err) {
      EXPECT_NE(std::string(err.what()).find(c.expected_error_substring), std::string::npos)
          << "got: " << err.what();
    }
  }
}

// Every proper prefix of a valid document is a truncation somebody's dying
// peer could produce mid-frame; each must fail cleanly with a JsonError.
TEST(JsonRobust, EveryPrefixOfValidDocumentFailsCleanly) {
  const std::string doc =
      R"({"a": [1, -2.5e3, true, null, "x\u0041\n"], "b": {"c": false, "d": "\\"}})";
  ASSERT_NO_THROW(Json::parse(doc));
  for (std::size_t len = 0; len < doc.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    EXPECT_THROW(Json::parse(doc.substr(0, len)), JsonError);
  }
}

TEST(JsonRobust, DepthLimitStopsDeepNesting) {
  // At the default limit: acceptable.
  const std::size_t default_depth = JsonLimits{}.max_depth;
  std::string at_limit(default_depth, '[');
  at_limit.append(default_depth, ']');
  EXPECT_NO_THROW(Json::parse(at_limit));

  // One past the limit: a clean error naming the ceiling.
  std::string past_limit(default_depth + 1, '[');
  past_limit.append(default_depth + 1, ']');
  try {
    Json::parse(past_limit);
    ADD_FAILURE() << "accepted nesting past the depth limit";
  } catch (const JsonError& err) {
    EXPECT_NE(std::string(err.what()).find("maximum depth"), std::string::npos) << err.what();
  }

  // Pathologically deep input must error out, not overflow the stack. An
  // unterminated 100k-bracket run previously recursed once per bracket.
  EXPECT_THROW(Json::parse(std::string(100000, '[')), JsonError);
  EXPECT_THROW(Json::parse(std::string(100000, '{')), JsonError);
  std::string mixed;
  for (int i = 0; i < 50000; ++i) mixed += "[{\"k\":";
  EXPECT_THROW(Json::parse(mixed), JsonError);

  // Depth is released on the way out: many sibling containers at shallow
  // depth are fine.
  std::string siblings = "[";
  for (int i = 0; i < 1000; ++i) siblings += i ? ",[[]]" : "[[]]";
  siblings += "]";
  EXPECT_NO_THROW(Json::parse(siblings));

  // A tightened limit applies too.
  JsonLimits shallow;
  shallow.max_depth = 2;
  EXPECT_NO_THROW(Json::parse("[[1]]", shallow));
  EXPECT_THROW(Json::parse("[[[1]]]", shallow), JsonError);
}

TEST(JsonRobust, StringLengthLimit) {
  JsonLimits limits;
  limits.max_string_bytes = 8;
  EXPECT_EQ(Json::parse("\"12345678\"", limits).as_string(), "12345678");
  try {
    Json::parse("\"123456789\"", limits);
    ADD_FAILURE() << "accepted string past the length limit";
  } catch (const JsonError& err) {
    EXPECT_NE(std::string(err.what()).find("maximum length"), std::string::npos) << err.what();
  }
  // The limit counts decoded bytes, so escapes cannot smuggle extra length.
  EXPECT_THROW(Json::parse("\"1234567\\u0041\\u0042\"", limits), JsonError);
  // Default limit is roomy enough for real reports.
  EXPECT_NO_THROW(Json::parse("\"" + std::string(4096, 'x') + "\""));
}

TEST(JsonRobust, NumberTokenLengthLimit) {
  JsonLimits limits;
  limits.max_number_chars = 8;
  EXPECT_EQ(Json::parse("12345678", limits).as_int64(), 12345678);
  try {
    Json::parse("123456789", limits);
    ADD_FAILURE() << "accepted number token past the length limit";
  } catch (const JsonError& err) {
    EXPECT_NE(std::string(err.what()).find("number token"), std::string::npos) << err.what();
  }
  // A default-limits parse still takes a full uint64 seed.
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint64(), 18446744073709551615ull);
}

// Structured errors keep flowing through the typed accessors (these guard
// the wire decoders' error paths, which map JsonError to a peer failure).
TEST(JsonRobust, AccessorErrorsAreJsonErrors) {
  const Json doc = Json::parse(R"({"n": 1.5, "neg": -3, "s": "x"})");
  EXPECT_THROW(doc.at("n").as_int64(), JsonError);
  EXPECT_THROW(doc.at("neg").as_uint64(), JsonError);
  EXPECT_THROW(doc.at("s").as_int64(), JsonError);
  EXPECT_THROW(doc.at("missing"), JsonError);
  EXPECT_THROW(doc.as_array(), JsonError);
}

}  // namespace
