// Checkpointed prefix forking: a restored-and-resumed run must be
// bit-identical (trace, transitions, outcome, unsafe records) to the same
// spec simulated from scratch — the snapshot/restore analogue of the arena
// reset contract. The matrix below sweeps the full registry surface (both
// personalities x all five workloads) under the RNG-heaviest environment
// preset (gusty exercises the simulator's wind stream every step, so a
// mid-stream util::Rng snapshot — including the cached Marsaglia spare
// gaussian — is load-bearing), interleaved through one ExperimentContext
// like tests/test_harness.cc does for arenas.
#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/checker.h"
#include "core/harness.h"
#include "core/sabre.h"
#include "core/scenario.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace avis::core {
namespace {

using sensors::SensorId;
using sensors::SensorType;

// Full-field equality of two experiment results. Unlike the spot checks in
// test_harness.cc this compares every sample of the trace and every
// transition — "bit-identical" is the contract.
void expect_results_identical(const ExperimentResult& fresh, const ExperimentResult& restored,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(fresh.workload_passed, restored.workload_passed);
  EXPECT_EQ(fresh.duration_ms, restored.duration_ms);
  EXPECT_EQ(fresh.fired_bugs, restored.fired_bugs);
  EXPECT_EQ(fresh.crash_cause, restored.crash_cause);
  ASSERT_EQ(fresh.violation.has_value(), restored.violation.has_value());
  if (fresh.violation) {
    EXPECT_EQ(fresh.violation->type, restored.violation->type);
    EXPECT_EQ(fresh.violation->time_ms, restored.violation->time_ms);
    EXPECT_EQ(fresh.violation->mode_id, restored.violation->mode_id);
    EXPECT_EQ(fresh.violation->details, restored.violation->details);
  }
  ASSERT_EQ(fresh.transitions.size(), restored.transitions.size());
  for (std::size_t i = 0; i < fresh.transitions.size(); ++i) {
    EXPECT_EQ(fresh.transitions[i].time_ms, restored.transitions[i].time_ms) << "t " << i;
    EXPECT_EQ(fresh.transitions[i].mode_id, restored.transitions[i].mode_id) << "t " << i;
    EXPECT_EQ(fresh.transitions[i].mode_name, restored.transitions[i].mode_name) << "t " << i;
  }
  ASSERT_EQ(fresh.trace.size(), restored.trace.size());
  for (std::size_t i = 0; i < fresh.trace.size(); ++i) {
    EXPECT_EQ(fresh.trace[i].time_ms, restored.trace[i].time_ms) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].position, restored.trace[i].position) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].acceleration, restored.trace[i].acceleration) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].mode_id, restored.trace[i].mode_id) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].on_ground, restored.trace[i].on_ground) << "i=" << i;
    EXPECT_EQ(fresh.trace[i].armed, restored.trace[i].armed) << "i=" << i;
  }
}

TEST(RngSnapshot, MidStreamSaveLoadPreservesTheMarsagliaSpare) {
  util::Rng original(12345);
  // An odd number of gaussian draws leaves a cached spare: the next
  // next_gaussian() must come from the cache, not a fresh polar round.
  for (int i = 0; i < 7; ++i) original.next_gaussian();
  util::Rng copy(0);
  copy.load(original.save());
  for (int i = 0; i < 64; ++i) {
    ASSERT_DOUBLE_EQ(original.next_gaussian(), copy.next_gaussian()) << "draw " << i;
    ASSERT_EQ(original.next_u64(), copy.next_u64()) << "draw " << i;
  }
}

// best_for is a binary search (std::upper_bound) over the time-sorted
// snapshot list; the boundary cases pin the off-by-one surface: exact-time
// hits on the first / a middle / the last snapshot, an injection strictly
// before the first snapshot, and one after the last.
TEST(Checkpoint, FirstInjectionPicksTheLatestUsableSnapshot) {
  CheckpointConfig config;
  config.interval_ms = 5000;
  CheckpointStore store(config);
  store.begin(ExperimentSpec{}, false);
  for (sim::SimTimeMs t : {5000, 10000, 15000}) {
    ExperimentSnapshot snap;
    snap.time_ms = t;
    store.add(std::move(snap));
  }
  store.finish(ExperimentResult{});
  EXPECT_EQ(store.best_for(0), nullptr);     // injects at t=0: nothing usable
  EXPECT_EQ(store.best_for(4999), nullptr);  // injects before the first snapshot
  EXPECT_EQ(store.best_for(5000)->time_ms, 5000);    // exact hit, first
  EXPECT_EQ(store.best_for(5001)->time_ms, 5000);    // just past the first
  EXPECT_EQ(store.best_for(10000)->time_ms, 10000);  // exact hit, middle
  EXPECT_EQ(store.best_for(12000)->time_ms, 10000);
  EXPECT_EQ(store.best_for(15000)->time_ms, 15000);  // exact hit, last
  EXPECT_EQ(store.best_for(99999)->time_ms, 15000);  // after the last
  EXPECT_EQ(store.best_for(FaultPlan::kNever)->time_ms, 15000);  // empty plan
}

TEST(Checkpoint, BestForHandlesASingleSnapshotStore) {
  CheckpointStore store{CheckpointConfig{}};
  store.begin(ExperimentSpec{}, false);
  ExperimentSnapshot snap;
  snap.time_ms = 7000;
  store.add(std::move(snap));
  store.finish(ExperimentResult{});
  EXPECT_EQ(store.best_for(6999), nullptr);
  EXPECT_EQ(store.best_for(7000)->time_ms, 7000);
  EXPECT_EQ(store.best_for(7001)->time_ms, 7000);
}

// The headline contract: restore-vs-fresh parity across the full registry
// surface — both personalities x all five workloads x gusty — with early
// (miss), mid-mission, multi-event and empty (golden re-run) plans, all
// interleaved through one context so stale state from any earlier
// combination would surface in a later one.
TEST(Checkpoint, RestoredRunsAreBitIdenticalAcrossTheRegistrySurface) {
  SimulationHarness harness;
  ExperimentContext context;
  CheckpointConfig config;  // default cadence (5000 ms), default budget

  const std::vector<std::string> personalities = {"ardupilot", "px4"};
  const std::vector<std::string> workloads = {"auto", "box-manual", "fence-mission",
                                              "wind-gust-box", "survey"};
  int monitored_combos = 0;
  for (const std::string& personality : personalities) {
    for (const std::string& workload : workloads) {
      const std::string label = personality + "/" + workload + "/gusty";
      SCOPED_TRACE(label);
      ScenarioSpec scenario;
      scenario.personality = personality;
      scenario.workload = workload;
      scenario.environment = "gusty";
      ExperimentSpec prototype = scenario_prototype(scenario);

      // Profile only when the golden run completes under gusts (the
      // monitored precondition); otherwise exercise the unmonitored path —
      // parity must hold either way.
      ExperimentSpec golden_spec = prototype;
      golden_spec.plan = FaultPlan{};
      const ExperimentResult golden = harness.run(golden_spec, nullptr, &context);
      std::optional<MonitorModel> model;
      if (golden.workload_passed) {
        model = harness.profile(prototype, 3, prototype.seed, &context);
        ++monitored_combos;
      }
      const MonitorModel* monitor = model ? &*model : nullptr;

      ExperimentSpec spec = prototype;
      if (monitor != nullptr) spec.max_duration_ms = model->profiling_duration_ms() + 45000;
      const CheckpointStore store = harness.record_prefix(spec, monitor, config, &context);
      ASSERT_GT(store.size(), 0u);
      EXPECT_EQ(store.evicted(), 0);

      struct PlanCase {
        const char* name;
        FaultPlan plan;
        bool expect_hit;
      };
      std::vector<PlanCase> cases;
      cases.push_back({"early-miss", {}, false});
      cases.back().plan.add(500, {SensorType::kCompass, 0});
      cases.push_back({"mid-single", {}, true});
      cases.back().plan.add(12000, {SensorType::kCompass, 0});
      cases.push_back({"late-multi", {}, true});
      cases.back().plan.add(18000, {SensorType::kGps, 0});
      cases.back().plan.add(26000, {SensorType::kBarometer, 0});
      cases.push_back({"empty-golden", {}, true});

      for (PlanCase& plan_case : cases) {
        spec.plan = plan_case.plan;
        const ExperimentResult fresh = harness.run(spec, monitor, &context);
        const ExperimentResult restored = harness.run(spec, monitor, &context, &store);
        EXPECT_EQ(fresh.resumed_from_ms, 0);
        if (plan_case.expect_hit) {
          EXPECT_GT(restored.resumed_from_ms, 0) << plan_case.name;
          EXPECT_LE(restored.resumed_from_ms, spec.plan.first_injection_ms());
        } else {
          EXPECT_EQ(restored.resumed_from_ms, 0) << plan_case.name;
        }
        expect_results_identical(fresh, restored, label + "/" + plan_case.name);
      }
    }
  }
  // The monitored restore path (session history, violation timing,
  // stop-on-violation truncation) must have real coverage in this matrix.
  EXPECT_GE(monitored_combos, 4);
}

// Violation-bearing restores: the compass fault in the APM-16967 window
// produces a monitored violation; a restored run must report it at the
// same millisecond with the same truncated duration.
TEST(Checkpoint, RestoredViolationTimingMatchesFresh) {
  auto& checker =
      avis::testing::cached_checker(fw::Personality::kArduPilotLike,
                                    workload::WorkloadId::kFenceMission);
  const MonitorModel& model = checker.model();
  SimulationHarness harness;
  ExperimentContext context;

  ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kFenceMission;
  spec.seed = 100;
  spec.max_duration_ms = model.profiling_duration_ms() + 45000;
  const CheckpointStore store = harness.record_prefix(spec, &model, {}, &context);

  spec.plan.add(avis::testing::transition_time(model, "auto-wp2"),
                {SensorType::kCompass, 0});
  const ExperimentResult fresh = harness.run(spec, &model, &context);
  ASSERT_TRUE(fresh.violation.has_value());
  const ExperimentResult restored = harness.run(spec, &model, &context, &store);
  EXPECT_GT(restored.resumed_from_ms, 0);
  expect_results_identical(fresh, restored, "fence-mission violation");
}

// The byte budget degrades the store to a coarser cadence instead of
// disappearing: eviction keeps restores exact, just from earlier snapshots.
TEST(Checkpoint, ByteBudgetEvictsToCoarserCadenceWithoutBreakingParity) {
  auto& checker = avis::testing::cached_checker(fw::Personality::kArduPilotLike,
                                                workload::WorkloadId::kAuto);
  const MonitorModel& model = checker.model();
  SimulationHarness harness;
  ExperimentContext context;

  ExperimentSpec spec;
  spec.personality = fw::Personality::kArduPilotLike;
  spec.workload = workload::WorkloadId::kAuto;
  spec.seed = 100;
  spec.max_duration_ms = model.profiling_duration_ms() + 45000;

  CheckpointConfig roomy;
  const CheckpointStore full = harness.record_prefix(spec, &model, roomy, &context);
  ASSERT_GT(full.size(), 2u);

  CheckpointConfig tight;
  tight.byte_budget = full.total_bytes() / 3;
  const CheckpointStore thinned = harness.record_prefix(spec, &model, tight, &context);
  EXPECT_GT(thinned.evicted(), 0);
  EXPECT_LT(thinned.size(), full.size());
  EXPECT_LE(thinned.total_bytes(), tight.byte_budget);

  spec.plan.add(12000, {SensorType::kCompass, 0});
  const ExperimentResult fresh = harness.run(spec, &model, &context);
  const ExperimentResult restored = harness.run(spec, &model, &context, &thinned);
  EXPECT_GT(restored.resumed_from_ms, 0);
  expect_results_identical(fresh, restored, "thinned store");
}

// Checker-level: a checkpointed campaign reports the same experiments,
// budget charges, unsafe records and stalled-run count as one with trees
// disabled or checkpointing off entirely — the checkpoint counters are the
// only fields allowed to differ across the three modes.
TEST(Checkpoint, CheckerCampaignIsReportIdenticalAcrossCheckpointModes) {
  constexpr sim::SimTimeMs kBudgetMs = 600 * 1000;
  const auto suite = SimulationHarness::iris_suite();

  ExperimentSpec prototype;
  prototype.personality = fw::Personality::kArduPilotLike;
  prototype.workload = workload::WorkloadId::kAuto;
  prototype.seed = 100;

  // Blanks a report's checkpoint accounting; everything else must then
  // match the cold run bit for bit. stalled_runs is deliberately NOT
  // blanked — it is derived from results, not from checkpoint state.
  const auto normalized = [](CheckerReport report) {
    report.checkpoint_hits = 0;
    report.checkpoint_misses = 0;
    report.checkpoint_hits_by_level.clear();
    report.checkpoint_evicted = 0;
    report.checkpoint_tree_evicted = 0;
    report.checkpoint_skipped_ms = 0;
    return report;
  };

  CheckpointConfig off;
  off.enabled = false;
  Checker cold_checker(prototype, off);
  SabreScheduler cold_strategy(suite, cold_checker.model().golden_transitions());
  BudgetClock cold_budget(kBudgetMs);
  const CheckerReport cold = cold_checker.run(cold_strategy, cold_budget);
  EXPECT_EQ(cold.checkpoint_hits + cold.checkpoint_misses, 0);
  EXPECT_TRUE(cold.checkpoint_hits_by_level.empty());

  CheckpointConfig root_only;
  root_only.trees = false;
  Checker root_checker(prototype, root_only);
  SabreScheduler root_strategy(suite, root_checker.model().golden_transitions());
  BudgetClock root_budget(kBudgetMs);
  const CheckerReport root = root_checker.run(root_strategy, root_budget);
  EXPECT_GT(root.checkpoint_hits, 0);
  // Trees off: every hit restores the fault-free root (level 0).
  for (std::size_t level = 1; level < root.checkpoint_hits_by_level.size(); ++level) {
    EXPECT_EQ(root.checkpoint_hits_by_level[level], 0) << "level " << level;
  }
  EXPECT_EQ(root.checkpoint_tree_evicted, 0);

  Checker warm_checker(prototype);  // checkpointing + trees on by default
  SabreScheduler warm_strategy(suite, warm_checker.model().golden_transitions());
  BudgetClock warm_budget(kBudgetMs);
  const CheckerReport warm = warm_checker.run(warm_strategy, warm_budget);
  EXPECT_GT(warm.checkpoint_hits, 0);
  EXPECT_GT(warm.checkpoint_skipped_ms, 0);
  EXPECT_EQ(warm.checkpoint_hits + warm.checkpoint_misses, warm.experiments);
  // The per-level split sums to the headline hit counter.
  int by_level_total = 0;
  for (int hits : warm.checkpoint_hits_by_level) by_level_total += hits;
  EXPECT_EQ(by_level_total, warm.checkpoint_hits);
  // The chain-heavy SABRE grid must actually exercise the tree: at least
  // one hit restored a faulty-prefix snapshot (level >= 1).
  ASSERT_GE(warm.checkpoint_hits_by_level.size(), 2u);
  int tree_hits = 0;
  for (std::size_t level = 1; level < warm.checkpoint_hits_by_level.size(); ++level) {
    tree_hits += warm.checkpoint_hits_by_level[level];
  }
  EXPECT_GT(tree_hits, 0);

  avis::testing::expect_reports_equal(normalized(cold), normalized(root));
  avis::testing::expect_reports_equal(normalized(cold), normalized(warm));
}

// The context pool's free list is capped at its high-water concurrent-
// checkout mark: contexts released beyond the peak are freed, not pinned.
TEST(ExperimentContextPool, FreeListCapsAtHighWaterMark) {
  ExperimentContextPool pool;
  std::vector<std::unique_ptr<ExperimentContext>> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.high_water_mark(), 3u);
  for (auto& ctx : held) pool.release(std::move(ctx));
  held.clear();
  EXPECT_EQ(pool.idle_count(), 3u);
  // Releasing contexts the pool never saw concurrently must not grow the
  // idle list beyond the peak.
  pool.release(std::make_unique<ExperimentContext>());
  pool.release(std::make_unique<ExperimentContext>());
  EXPECT_EQ(pool.idle_count(), 3u);
  // Reuse drains the free list before allocating.
  auto a = pool.acquire();
  EXPECT_EQ(pool.idle_count(), 2u);
  pool.release(std::move(a));
  EXPECT_EQ(pool.idle_count(), 3u);
}

}  // namespace
}  // namespace avis::core
